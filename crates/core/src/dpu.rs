//! Flex-DPU composition: scheduling multiple GEMMs over the Flex-DPE pool
//! (Sec. IV-B).
//!
//! SIGMA's NoC statically partitions the Flex-DPEs into contiguous groups
//! — Flexible Dot Product Units — one per concurrently running GEMM. The
//! switches between Flex-DPEs act as a multicast bus within a DPU and as
//! hop-by-hop forwarders between DPUs; they are configured once per
//! mapping, with no dynamic routing.

use crate::config::{SigmaConfig, SigmaError};
use crate::engine::{GemmRun, SigmaSim};
use crate::model::{estimate_best, GemmProblem};
use crate::noc::{MeshNoc, NocStats};
use crate::stats::CycleStats;
use sigma_matrix::{GemmShape, SparseMatrix};

/// The assignment of one GEMM to a contiguous range of Flex-DPEs.
#[derive(Debug, Clone, PartialEq)]
pub struct DpuAllocation {
    /// Index of the GEMM in the submitted batch.
    pub gemm: usize,
    /// First Flex-DPE of the DPU.
    pub first_dpe: usize,
    /// Number of Flex-DPEs in the DPU.
    pub num_dpes: usize,
    /// Estimated stats for the GEMM on its DPU.
    pub stats: CycleStats,
    /// Inter-DPE NoC accounting: static configuration of the DPU's
    /// switches plus the per-fold boundary-partial merges.
    pub noc: NocStats,
}

/// How the Flex-DPE pool is split across a batch of GEMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PartitionPolicy {
    /// Shares proportional to each GEMM's useful MACs (the default).
    #[default]
    Proportional,
    /// Equal shares regardless of job size.
    Equal,
    /// Makespan-driven: start from proportional, then greedily move one
    /// Flex-DPE at a time from the job that finishes earliest to the one
    /// that finishes latest while the makespan improves.
    MakespanGreedy,
}

/// Partitions the Flex-DPE pool across a batch of GEMMs and estimates the
/// batch makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpuAllocator {
    config: SigmaConfig,
}

impl DpuAllocator {
    /// Creates an allocator over the full SIGMA instance.
    #[must_use]
    pub fn new(config: SigmaConfig) -> Self {
        Self { config }
    }

    /// Splits the Flex-DPE pool proportionally to each GEMM's useful work,
    /// guaranteeing each GEMM at least one Flex-DPE.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::NoDpes`] if the batch has more GEMMs than
    /// there are Flex-DPEs, or is empty.
    pub fn partition(&self, problems: &[GemmProblem]) -> Result<Vec<usize>, SigmaError> {
        if problems.is_empty() || problems.len() > self.config.num_dpes() {
            return Err(SigmaError::NoDpes);
        }
        let total_work: f64 = problems.iter().map(GemmProblem::useful_macs).sum();
        let pool = self.config.num_dpes();
        let mut shares: Vec<usize> = problems
            .iter()
            .map(|p| {
                if total_work <= 0.0 {
                    1
                } else {
                    (((p.useful_macs() / total_work) * pool as f64).floor() as usize).max(1)
                }
            })
            .collect();
        // Distribute any leftover DPEs to the largest jobs; trim overflow
        // from the largest shares.
        loop {
            let used: usize = shares.iter().sum();
            match used.cmp(&pool) {
                std::cmp::Ordering::Equal => break,
                std::cmp::Ordering::Less => {
                    // `problems` is non-empty (checked on entry).
                    let Some(i) = (0..shares.len()).max_by(|&a, &b| {
                        problems[a]
                            .useful_macs()
                            .partial_cmp(&problems[b].useful_macs())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    }) else {
                        break;
                    };
                    shares[i] += 1;
                }
                std::cmp::Ordering::Greater => {
                    // Shares exceed the pool only when some share > 1.
                    let Some(i) =
                        (0..shares.len()).filter(|&i| shares[i] > 1).max_by_key(|&i| shares[i])
                    else {
                        break;
                    };
                    shares[i] -= 1;
                }
            }
        }
        Ok(shares)
    }

    /// Splits the pool under a [`PartitionPolicy`].
    ///
    /// # Errors
    ///
    /// Same as [`DpuAllocator::partition`].
    pub fn partition_with_policy(
        &self,
        problems: &[GemmProblem],
        policy: PartitionPolicy,
    ) -> Result<Vec<usize>, SigmaError> {
        let pool = self.config.num_dpes();
        match policy {
            PartitionPolicy::Proportional => self.partition(problems),
            PartitionPolicy::Equal => {
                if problems.is_empty() || problems.len() > pool {
                    return Err(SigmaError::NoDpes);
                }
                let base = pool / problems.len();
                let extra = pool % problems.len();
                Ok((0..problems.len()).map(|i| base + usize::from(i < extra)).collect())
            }
            PartitionPolicy::MakespanGreedy => {
                let mut shares = self.partition(problems)?;
                let job_cycles = |p: &GemmProblem, dpes: usize| -> u64 {
                    // Geometry is valid by construction (dpes >= 1, the
                    // parent dpe_size already validated, bandwidth >= 1);
                    // clamped() is exact on valid input.
                    let sub = SigmaConfig::clamped(
                        dpes,
                        self.config.dpe_size(),
                        (self.config.input_bandwidth() * dpes / pool).max(1),
                        self.config.dataflow(),
                    );
                    estimate_best(&sub, p).1.total_cycles()
                };
                let makespan = |shares: &[usize]| -> u64 {
                    problems.iter().zip(shares).map(|(p, &d)| job_cycles(p, d)).max().unwrap_or(0)
                };
                let mut best = makespan(&shares);
                // Greedy improvement: donate one DPE from the fastest
                // donor (with > 1 DPE) to the slowest job.
                for _ in 0..4 * pool {
                    let times: Vec<u64> =
                        problems.iter().zip(&shares).map(|(p, &d)| job_cycles(p, d)).collect();
                    let Some(slowest) = (0..times.len()).max_by_key(|&i| times[i]) else { break };
                    let donor = (0..times.len())
                        .filter(|&i| i != slowest && shares[i] > 1)
                        .min_by_key(|&i| times[i]);
                    let Some(donor) = donor else { break };
                    shares[donor] -= 1;
                    shares[slowest] += 1;
                    let new = makespan(&shares);
                    if new >= best {
                        // Revert and stop: no further improvement.
                        shares[donor] += 1;
                        shares[slowest] -= 1;
                        break;
                    }
                    best = new;
                }
                Ok(shares)
            }
        }
    }

    /// Allocates DPUs for a batch and estimates every GEMM's stats and the
    /// batch makespan (all DPUs run concurrently).
    ///
    /// # Errors
    ///
    /// See [`DpuAllocator::partition`].
    pub fn run_batch(
        &self,
        problems: &[GemmProblem],
    ) -> Result<(Vec<DpuAllocation>, u64), SigmaError> {
        let shares = self.partition(problems)?;
        let mesh = MeshNoc::new(self.config.num_dpes(), self.config.input_bandwidth().max(1));
        let mut allocations = Vec::with_capacity(problems.len());
        let mut first = 0usize;
        let mut makespan = 0u64;
        for (i, (p, &dpes)) in problems.iter().zip(&shares).enumerate() {
            let sub = SigmaConfig::new(
                dpes,
                self.config.dpe_size(),
                // The SRAM bandwidth is shared in proportion to pool share.
                (self.config.input_bandwidth() * dpes / self.config.num_dpes()).max(1),
                self.config.dataflow(),
            )?;
            let (_, stats) = estimate_best(&sub, p);
            let range = first..first + dpes;
            let mut noc = mesh.configure_dpu(&range);
            for _ in 0..stats.folds {
                noc = noc.merged(&mesh.merge_boundary_partials(&range));
            }
            makespan = makespan.max(stats.total_cycles());
            allocations.push(DpuAllocation {
                gemm: i,
                first_dpe: first,
                num_dpes: dpes,
                stats,
                noc,
            });
            first += dpes;
        }
        Ok((allocations, makespan))
    }

    /// Functionally executes a batch of concrete GEMMs, one Flex-DPU per
    /// GEMM, all DPUs concurrent. Returns each GEMM's verified run and
    /// the batch makespan.
    ///
    /// # Errors
    ///
    /// Propagates partition errors and per-GEMM dimension mismatches.
    pub fn run_batch_functional(
        &self,
        gemms: &[(SparseMatrix, SparseMatrix)],
    ) -> Result<(Vec<GemmRun>, u64), SigmaError> {
        let problems: Vec<GemmProblem> = gemms
            .iter()
            .map(|(a, b)| {
                let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
                GemmProblem::sparse(shape, 1.0 - a.sparsity(), 1.0 - b.sparsity())
            })
            .collect();
        let shares = self.partition(&problems)?;
        let mut runs = Vec::with_capacity(gemms.len());
        let mut makespan = 0u64;
        for ((a, b), &dpes) in gemms.iter().zip(&shares) {
            let sub = SigmaConfig::new(
                dpes,
                self.config.dpe_size(),
                (self.config.input_bandwidth() * dpes / self.config.num_dpes()).max(1),
                self.config.dataflow(),
            )?
            .with_stream_bandwidth(
                (self.config.stream_bandwidth() * dpes / self.config.num_dpes()).max(1),
            )?;
            let (_, run) = SigmaSim::new(sub)?.run_best_stationary(a, b)?;
            makespan = makespan.max(run.stats.total_cycles());
            runs.push(run);
        }
        Ok((runs, makespan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Dataflow;
    use sigma_matrix::GemmShape;

    fn cfg() -> SigmaConfig {
        SigmaConfig::new(16, 32, 32, Dataflow::WeightStationary).unwrap()
    }

    #[test]
    fn partition_is_proportional_and_complete() {
        let alloc = DpuAllocator::new(cfg());
        let problems = [
            GemmProblem::dense(GemmShape::new(256, 256, 256)),
            GemmProblem::dense(GemmShape::new(64, 64, 64)),
        ];
        let shares = alloc.partition(&problems).unwrap();
        assert_eq!(shares.iter().sum::<usize>(), 16);
        assert!(shares[0] > shares[1], "bigger GEMM gets more DPEs: {shares:?}");
        assert!(shares[1] >= 1);
    }

    #[test]
    fn partition_rejects_bad_batches() {
        let alloc = DpuAllocator::new(cfg());
        assert!(alloc.partition(&[]).is_err());
        let too_many = vec![GemmProblem::dense(GemmShape::new(8, 8, 8)); 17];
        assert!(alloc.partition(&too_many).is_err());
    }

    #[test]
    fn run_batch_covers_pool_contiguously() {
        let alloc = DpuAllocator::new(cfg());
        let problems = [
            GemmProblem::dense(GemmShape::new(128, 128, 128)),
            GemmProblem::sparse(GemmShape::new(128, 128, 128), 0.2, 0.5),
            GemmProblem::dense(GemmShape::new(32, 32, 32)),
        ];
        let (allocs, makespan) = alloc.run_batch(&problems).unwrap();
        assert_eq!(allocs.len(), 3);
        let mut next = 0;
        for a in &allocs {
            assert_eq!(a.first_dpe, next, "DPUs must be contiguous");
            next += a.num_dpes;
            assert!(a.stats.total_cycles() <= makespan);
        }
        assert_eq!(next, 16);
        assert_eq!(makespan, allocs.iter().map(|a| a.stats.total_cycles()).max().unwrap());
    }

    #[test]
    fn equal_jobs_get_equal_shares() {
        let alloc = DpuAllocator::new(cfg());
        let problems = vec![GemmProblem::dense(GemmShape::new(64, 64, 64)); 4];
        let shares = alloc.partition(&problems).unwrap();
        assert_eq!(shares, vec![4, 4, 4, 4]);
    }

    #[test]
    fn partition_policies_cover_pool() {
        let alloc = DpuAllocator::new(cfg());
        let problems = [
            GemmProblem::dense(GemmShape::new(512, 512, 512)),
            GemmProblem::dense(GemmShape::new(64, 64, 64)),
            GemmProblem::dense(GemmShape::new(128, 128, 128)),
        ];
        for policy in
            [PartitionPolicy::Proportional, PartitionPolicy::Equal, PartitionPolicy::MakespanGreedy]
        {
            let shares = alloc.partition_with_policy(&problems, policy).unwrap();
            assert_eq!(shares.iter().sum::<usize>(), 16, "{policy:?}");
            assert!(shares.iter().all(|&s| s >= 1), "{policy:?}");
        }
        let eq = alloc.partition_with_policy(&problems, PartitionPolicy::Equal).unwrap();
        assert_eq!(eq, vec![6, 5, 5]);
    }

    #[test]
    fn makespan_greedy_never_loses_to_proportional() {
        let alloc = DpuAllocator::new(cfg());
        // A skewed batch where proportional underserves the big job's
        // irregularity.
        let problems = [
            GemmProblem::sparse(GemmShape::new(2048, 64, 512), 0.3, 0.3),
            GemmProblem::dense(GemmShape::new(96, 96, 96)),
            GemmProblem::dense(GemmShape::new(64, 512, 32)),
        ];
        let cycles_for = |shares: &[usize]| -> u64 {
            problems
                .iter()
                .zip(shares)
                .map(|(p, &d)| {
                    let sub =
                        SigmaConfig::new(d, 32, (32 * d / 16).max(1), Dataflow::WeightStationary)
                            .unwrap();
                    crate::model::estimate_best(&sub, p).1.total_cycles()
                })
                .max()
                .unwrap()
        };
        let prop = alloc.partition_with_policy(&problems, PartitionPolicy::Proportional).unwrap();
        let greedy =
            alloc.partition_with_policy(&problems, PartitionPolicy::MakespanGreedy).unwrap();
        assert!(cycles_for(&greedy) <= cycles_for(&prop));
    }

    #[test]
    fn functional_batch_is_numerically_correct() {
        use sigma_matrix::gen::{sparse_uniform, Density};
        let alloc = DpuAllocator::new(cfg());
        let gemms: Vec<_> = (0..3)
            .map(|i| {
                (
                    sparse_uniform(12, 10, Density::new(0.5).unwrap(), 40 + i),
                    sparse_uniform(10, 8, Density::new(0.6).unwrap(), 50 + i),
                )
            })
            .collect();
        let (runs, makespan) = alloc.run_batch_functional(&gemms).unwrap();
        assert_eq!(runs.len(), 3);
        for ((a, b), run) in gemms.iter().zip(&runs) {
            let reference = a.to_dense().matmul(&b.to_dense());
            assert!(run.result.approx_eq(&reference, 1e-3));
            assert!(run.stats.total_cycles() <= makespan);
        }
        assert_eq!(makespan, runs.iter().map(|r| r.stats.total_cycles()).max().unwrap());
    }

    #[test]
    fn zero_work_batch_still_allocates() {
        let alloc = DpuAllocator::new(cfg());
        let problems = vec![GemmProblem::sparse(GemmShape::new(8, 8, 8), 0.0, 0.0); 2];
        let shares = alloc.partition(&problems).unwrap();
        assert_eq!(shares.iter().sum::<usize>(), 16);
    }
}
