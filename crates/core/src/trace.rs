//! Cycle-stamped execution traces for the SIGMA engine.
//!
//! A [`Trace`] records the phase timeline the engine walks — fold loads,
//! streaming steps, reduction drains — with start cycles and durations,
//! reconstructing exactly how the Table-II totals compose. Traces are
//! the debugging view the analytic model cannot give: they show *where*
//! the cycles went, step by step, and they are validated against
//! [`crate::CycleStats`] (the sum of trace durations per phase must equal
//! the stats' phase totals).

use crate::stats::CycleStats;
use std::fmt;

/// The phase an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Stationary fold loading.
    Load,
    /// One streaming step (distribution + multiply + pipelined reduce).
    Stream,
    /// Final reduction drain of a fold.
    Drain,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Load => "load",
            Phase::Stream => "stream",
            Phase::Drain => "drain",
        })
    }
}

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the event starts.
    pub start: u64,
    /// Duration in cycles.
    pub cycles: u64,
    /// Phase.
    pub phase: Phase,
    /// Fold index.
    pub fold: u64,
    /// Streaming step within the fold (`None` for load/drain).
    pub step: Option<usize>,
}

/// An append-only execution trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    clock: u64,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event at the current clock and advances it.
    pub fn record(&mut self, phase: Phase, fold: u64, step: Option<usize>, cycles: u64) {
        self.events.push(TraceEvent { start: self.clock, cycles, phase, fold, step });
        self.clock += cycles;
    }

    /// All events in execution order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The final clock value (total traced cycles).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.clock
    }

    /// Sum of durations in one phase.
    #[must_use]
    pub fn phase_cycles(&self, phase: Phase) -> u64 {
        self.events.iter().filter(|e| e.phase == phase).map(|e| e.cycles).sum()
    }

    /// Checks the trace against a stats record: per-phase totals and the
    /// overall total must match.
    #[must_use]
    pub fn consistent_with(&self, stats: &CycleStats) -> bool {
        self.phase_cycles(Phase::Load) == stats.loading_cycles
            && self.phase_cycles(Phase::Stream) == stats.streaming_cycles
            && self.phase_cycles(Phase::Drain) == stats.add_cycles
            && self.total_cycles() == stats.total_cycles()
    }

    /// Renders a compact per-fold summary (`fold N: load L, stream S in
    /// K steps, drain D`).
    #[must_use]
    pub fn fold_summary(&self) -> String {
        let mut out = String::new();
        let max_fold = self.events.iter().map(|e| e.fold).max().unwrap_or(0);
        for f in 0..=max_fold {
            let of = |p: Phase| -> u64 {
                self.events.iter().filter(|e| e.fold == f && e.phase == p).map(|e| e.cycles).sum()
            };
            let steps =
                self.events.iter().filter(|e| e.fold == f && e.phase == Phase::Stream).count();
            out.push_str(&format!(
                "fold {f}: load {}, stream {} in {} steps, drain {}\n",
                of(Phase::Load),
                of(Phase::Stream),
                steps,
                of(Phase::Drain)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut t = Trace::new();
        t.record(Phase::Load, 0, None, 4);
        t.record(Phase::Stream, 0, Some(0), 2);
        t.record(Phase::Stream, 0, Some(1), 2);
        t.record(Phase::Drain, 0, None, 3);
        assert_eq!(t.total_cycles(), 11);
        assert_eq!(t.events()[1].start, 4);
        assert_eq!(t.events()[3].start, 8);
        assert_eq!(t.phase_cycles(Phase::Stream), 4);
    }

    #[test]
    fn consistency_check() {
        let mut t = Trace::new();
        t.record(Phase::Load, 0, None, 10);
        t.record(Phase::Stream, 0, Some(0), 20);
        t.record(Phase::Drain, 0, None, 3);
        let stats = CycleStats {
            loading_cycles: 10,
            streaming_cycles: 20,
            add_cycles: 3,
            ..CycleStats::default()
        };
        assert!(t.consistent_with(&stats));
        let wrong = CycleStats { loading_cycles: 9, ..stats };
        assert!(!t.consistent_with(&wrong));
    }

    #[test]
    fn fold_summary_lists_folds() {
        let mut t = Trace::new();
        t.record(Phase::Load, 0, None, 1);
        t.record(Phase::Stream, 0, Some(0), 5);
        t.record(Phase::Drain, 0, None, 2);
        t.record(Phase::Load, 1, None, 1);
        t.record(Phase::Stream, 1, Some(0), 5);
        t.record(Phase::Drain, 1, None, 2);
        let s = t.fold_summary();
        assert!(s.contains("fold 0: load 1, stream 5 in 1 steps, drain 2"));
        assert!(s.contains("fold 1:"));
    }
}
