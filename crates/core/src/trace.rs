//! Cycle-stamped execution traces for the SIGMA engine.
//!
//! A [`Trace`] records the phase timeline the engine walks — fold loads,
//! streaming steps, reduction drains — with start cycles and durations,
//! reconstructing exactly how the Table-II totals compose. Traces are
//! the debugging view the analytic model cannot give: they show *where*
//! the cycles went, step by step, and they are validated against
//! [`crate::CycleStats`] (the sum of trace durations per phase must equal
//! the stats' phase totals).

use crate::stats::CycleStats;
use sigma_telemetry::ChromeTrace;
use std::fmt;

/// The phase an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Stationary fold loading.
    Load,
    /// One streaming step (distribution + multiply + pipelined reduce).
    Stream,
    /// Final reduction drain of a fold.
    Drain,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Load => "load",
            Phase::Stream => "stream",
            Phase::Drain => "drain",
        })
    }
}

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the event starts.
    pub start: u64,
    /// Duration in cycles.
    pub cycles: u64,
    /// Phase.
    pub phase: Phase,
    /// Fold index.
    pub fold: u64,
    /// Streaming step within the fold (`None` for load/drain).
    pub step: Option<usize>,
}

/// An append-only execution trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    clock: u64,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event at the current clock and advances it.
    pub fn record(&mut self, phase: Phase, fold: u64, step: Option<usize>, cycles: u64) {
        self.events.push(TraceEvent { start: self.clock, cycles, phase, fold, step });
        self.clock += cycles;
    }

    /// All events in execution order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The final clock value (total traced cycles).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.clock
    }

    /// Sum of durations in one phase.
    #[must_use]
    pub fn phase_cycles(&self, phase: Phase) -> u64 {
        self.events.iter().filter(|e| e.phase == phase).map(|e| e.cycles).sum()
    }

    /// Checks the trace against a stats record: per-phase totals and the
    /// overall total must match.
    #[must_use]
    pub fn consistent_with(&self, stats: &CycleStats) -> bool {
        self.phase_cycles(Phase::Load) == stats.loading_cycles
            && self.phase_cycles(Phase::Stream) == stats.streaming_cycles
            && self.phase_cycles(Phase::Drain) == stats.add_cycles
            && self.total_cycles() == stats.total_cycles()
    }

    /// Renders a compact per-fold summary (`fold N: load L, stream S in
    /// K steps, drain D`).
    ///
    /// Single pass over the events: each fold accumulates into its slot of
    /// a per-fold table, so cost is `O(events + folds)` rather than the
    /// `O(folds x events)` a per-fold rescan would pay (a paper-scale GEMM
    /// traces hundreds of folds with thousands of steps each).
    #[must_use]
    pub fn fold_summary(&self) -> String {
        #[derive(Clone, Copy, Default)]
        struct Acc {
            load: u64,
            stream: u64,
            steps: u64,
            drain: u64,
        }
        let max_fold = self.events.iter().map(|e| e.fold).max().unwrap_or(0);
        let mut folds = vec![Acc::default(); usize::try_from(max_fold).unwrap_or(0) + 1];
        for e in &self.events {
            let acc = &mut folds[usize::try_from(e.fold).unwrap_or(0)];
            match e.phase {
                Phase::Load => acc.load += e.cycles,
                Phase::Stream => {
                    acc.stream += e.cycles;
                    acc.steps += 1;
                }
                Phase::Drain => acc.drain += e.cycles,
            }
        }
        let mut out = String::new();
        for (f, acc) in folds.iter().enumerate() {
            out.push_str(&format!(
                "fold {f}: load {}, stream {} in {} steps, drain {}\n",
                acc.load, acc.stream, acc.steps, acc.drain
            ));
        }
        out
    }

    /// Converts the trace into a Chrome trace-event document (load it at
    /// `ui.perfetto.dev`). One simulated cycle renders as one microsecond.
    ///
    /// Each phase becomes its own named thread track carrying that phase's
    /// events as `"X"` spans, so the summed duration of a track equals the
    /// corresponding [`CycleStats`] phase total by construction. Cumulative
    /// per-phase cycle counters are sampled at every fold boundary as a
    /// `"C"` counter timeline.
    #[must_use]
    pub fn to_chrome_trace(&self, process: &str) -> ChromeTrace {
        const TID: [(u64, Phase, &str); 3] = [
            (1, Phase::Load, "phase: load"),
            (2, Phase::Stream, "phase: stream"),
            (3, Phase::Drain, "phase: drain"),
        ];
        let mut ct = ChromeTrace::new(process);
        for &(tid, _, name) in &TID {
            ct.thread(tid, name);
        }
        let mut cum = [0u64; 3]; // cumulative cycles per phase
        let mut fold = None;
        for e in &self.events {
            let idx = TID.iter().position(|&(_, p, _)| p == e.phase).unwrap_or(0);
            if fold.is_some() && fold != Some(e.fold) {
                for (&(_, _, name), &c) in TID.iter().zip(cum.iter()) {
                    ct.counter(format!("cycles: {}", &name[7..]), e.start, c);
                }
            }
            fold = Some(e.fold);
            let name = match (e.phase, e.step) {
                (Phase::Stream, Some(s)) => format!("fold {} step {s}", e.fold),
                (p, _) => format!("fold {} {p}", e.fold),
            };
            ct.span(TID[idx].0, name, e.start, e.cycles);
            cum[idx] += e.cycles;
        }
        if fold.is_some() {
            for (&(_, _, name), &c) in TID.iter().zip(cum.iter()) {
                ct.counter(format!("cycles: {}", &name[7..]), self.clock, c);
            }
        }
        ct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut t = Trace::new();
        t.record(Phase::Load, 0, None, 4);
        t.record(Phase::Stream, 0, Some(0), 2);
        t.record(Phase::Stream, 0, Some(1), 2);
        t.record(Phase::Drain, 0, None, 3);
        assert_eq!(t.total_cycles(), 11);
        assert_eq!(t.events()[1].start, 4);
        assert_eq!(t.events()[3].start, 8);
        assert_eq!(t.phase_cycles(Phase::Stream), 4);
    }

    #[test]
    fn consistency_check() {
        let mut t = Trace::new();
        t.record(Phase::Load, 0, None, 10);
        t.record(Phase::Stream, 0, Some(0), 20);
        t.record(Phase::Drain, 0, None, 3);
        let stats = CycleStats {
            loading_cycles: 10,
            streaming_cycles: 20,
            add_cycles: 3,
            ..CycleStats::default()
        };
        assert!(t.consistent_with(&stats));
        let wrong = CycleStats { loading_cycles: 9, ..stats };
        assert!(!t.consistent_with(&wrong));
    }

    #[test]
    fn fold_summary_lists_folds() {
        let mut t = Trace::new();
        t.record(Phase::Load, 0, None, 1);
        t.record(Phase::Stream, 0, Some(0), 5);
        t.record(Phase::Drain, 0, None, 2);
        t.record(Phase::Load, 1, None, 1);
        t.record(Phase::Stream, 1, Some(0), 5);
        t.record(Phase::Drain, 1, None, 2);
        let s = t.fold_summary();
        assert!(s.contains("fold 0: load 1, stream 5 in 1 steps, drain 2"));
        assert!(s.contains("fold 1:"));
    }

    #[test]
    fn empty_trace_summary_prints_fold_zero() {
        assert_eq!(Trace::new().fold_summary(), "fold 0: load 0, stream 0 in 0 steps, drain 0\n");
    }

    #[test]
    fn fold_summary_handles_many_folds() {
        // The single-pass summary must stay exact at fold counts where the
        // old per-fold rescan would be quadratic.
        let mut t = Trace::new();
        const FOLDS: u64 = 2_000;
        for f in 0..FOLDS {
            t.record(Phase::Load, f, None, 2);
            t.record(Phase::Stream, f, Some(0), 3);
            t.record(Phase::Stream, f, Some(1), 3);
            t.record(Phase::Drain, f, None, 1);
        }
        let s = t.fold_summary();
        assert_eq!(s.lines().count() as u64, FOLDS);
        assert!(s.starts_with("fold 0: load 2, stream 6 in 2 steps, drain 1\n"));
        assert!(s.ends_with(&format!("fold {}: load 2, stream 6 in 2 steps, drain 1\n", FOLDS - 1)));
    }

    #[test]
    fn chrome_trace_tracks_match_phase_totals() {
        let mut t = Trace::new();
        t.record(Phase::Load, 0, None, 4);
        t.record(Phase::Stream, 0, Some(0), 2);
        t.record(Phase::Stream, 0, Some(1), 2);
        t.record(Phase::Drain, 0, None, 3);
        t.record(Phase::Load, 1, None, 4);
        t.record(Phase::Stream, 1, Some(0), 5);
        t.record(Phase::Drain, 1, None, 1);
        let json = t.to_chrome_trace("unit").to_json();
        let summary = sigma_telemetry::validate_chrome_trace(&json).unwrap();
        assert_eq!(summary.span_count, t.events().len());
        assert_eq!(summary.track("phase: load"), Some(t.phase_cycles(Phase::Load)));
        assert_eq!(summary.track("phase: stream"), Some(t.phase_cycles(Phase::Stream)));
        assert_eq!(summary.track("phase: drain"), Some(t.phase_cycles(Phase::Drain)));
        assert_eq!(summary.total_duration, t.total_cycles());
        assert_eq!(summary.end_ts, t.total_cycles());
        // Counter timeline: one sample per phase at each fold boundary plus
        // the final clock.
        assert_eq!(summary.counter_count, 6);
    }

    #[test]
    fn chrome_trace_of_empty_trace_is_metadata_only() {
        let json = Trace::new().to_chrome_trace("empty").to_json();
        let summary = sigma_telemetry::validate_chrome_trace(&json).unwrap();
        assert_eq!(summary.span_count, 0);
        assert_eq!(summary.counter_count, 0);
    }
}
