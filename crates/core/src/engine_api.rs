//! The unified engine abstraction every simulated accelerator implements.
//!
//! The paper's evaluation (Sec. VI) drives one SIGMA configuration and
//! seven baseline designs over the same GEMM suite. [`Engine`] is the one
//! entry point the experiment harness uses for all of them: sparse
//! operands in, an [`EngineRun`] (numeric product + Table-II
//! [`CycleStats`] + optional [`Trace`]) out. The trait is object-safe and
//! `Send + Sync`, so a heterogeneous fleet of boxed engines can be fanned
//! across threads by a sweep driver.

use crate::cancel::CancelToken;
use crate::config::SigmaError;
use crate::engine::SigmaSim;
use crate::stats::CycleStats;
use crate::trace::Trace;
use sigma_matrix::{Matrix, SparseMatrix};
use sigma_telemetry::TelemetrySnapshot;

/// The outcome of one GEMM on any engine: the numeric product, the cycle
/// accounting, and (when the engine supports it) a cycle-stamped trace.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRun {
    /// The computed `M x N` product.
    pub result: Matrix,
    /// Table-II style latency and utilization metrics.
    pub stats: CycleStats,
    /// Optional cycle-stamped event trace (engines that do not model one
    /// return `None`).
    pub trace: Option<Trace>,
}

impl EngineRun {
    /// Wraps a result and stats with no trace.
    #[must_use]
    pub fn new(result: Matrix, stats: CycleStats) -> Self {
        Self { result, stats, trace: None }
    }
}

/// Why an engine refused to run a GEMM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `A.cols() != B.rows()`.
    DimensionMismatch {
        /// Contraction length of the left operand.
        k_a: usize,
        /// Contraction length of the right operand.
        k_b: usize,
    },
    /// The engine's configuration cannot execute this problem.
    Config(String),
    /// An operand (or an intermediate) contains NaN or infinity; the
    /// functional models only define behaviour over finite values.
    Numeric(String),
    /// The engine exceeded the harness watchdog budget and was abandoned.
    Timeout {
        /// The watchdog budget that was exhausted, in milliseconds.
        budget_ms: u64,
    },
    /// The engine panicked; the payload is the panic message.
    Panicked(String),
    /// The run was cancelled cooperatively: a harness watchdog set the
    /// [`CancelToken`] and the engine stopped at its next fold boundary.
    Cancelled,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DimensionMismatch { k_a, k_b } => {
                write!(f, "dimension mismatch: A has K={k_a}, B has K={k_b}")
            }
            EngineError::Config(msg) => write!(f, "engine configuration error: {msg}"),
            EngineError::Numeric(msg) => write!(f, "non-finite value: {msg}"),
            EngineError::Timeout { budget_ms } => {
                write!(f, "engine exceeded the {budget_ms} ms watchdog budget")
            }
            EngineError::Panicked(msg) => write!(f, "engine panicked: {msg}"),
            EngineError::Cancelled => write!(f, "run cancelled by the harness watchdog"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SigmaError> for EngineError {
    fn from(e: SigmaError) -> Self {
        match e {
            SigmaError::DimensionMismatch { k_a, k_b } => {
                EngineError::DimensionMismatch { k_a, k_b }
            }
            SigmaError::NonFiniteInput { .. } => EngineError::Numeric(e.to_string()),
            SigmaError::Cancelled => EngineError::Cancelled,
            other => EngineError::Config(other.to_string()),
        }
    }
}

/// Rejects GEMM operands containing NaN or infinity.
///
/// Every engine's `run` calls this before touching the datapath: a NaN
/// silently propagates through a functional model and poisons the sweep's
/// verification, so it is an input error, not a numeric result.
///
/// # Errors
///
/// Returns [`EngineError::Numeric`] naming the offending operand.
pub fn validate_finite(a: &SparseMatrix, b: &SparseMatrix) -> Result<(), EngineError> {
    if !a.all_finite() {
        return Err(EngineError::Numeric("operand A contains NaN or infinity".into()));
    }
    if !b.all_finite() {
        return Err(EngineError::Numeric("operand B contains NaN or infinity".into()));
    }
    Ok(())
}

/// A GEMM engine the experiment harness can drive.
///
/// Implementations exist for the functional SIGMA simulator (this crate)
/// and for every baseline accelerator (`sigma-baselines`), so one sweep
/// loop covers the whole evaluation. The trait is object-safe; sweeps
/// hold `Box<dyn Engine>` and may call [`Engine::run`] from multiple
/// threads (`&self`, `Send + Sync`).
pub trait Engine: Send + Sync {
    /// Human-readable design name (used in legends, CSV rows, and the
    /// CLI's `--engine` lookup).
    fn name(&self) -> String;

    /// Number of processing elements (the normalization currency of the
    /// paper's comparisons).
    fn pes(&self) -> usize;

    /// Executes `C = A x B`, returning the product and cycle accounting.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DimensionMismatch`] when
    /// `a.cols() != b.rows()`, or [`EngineError::Config`] when the
    /// engine cannot execute the problem.
    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError>;

    /// Cooperatively cancellable variant of [`Engine::run`]: the harness
    /// watchdog holds a clone of `cancel` and sets it on timeout, and an
    /// engine that supports cancellation polls it at fold boundaries and
    /// returns [`EngineError::Cancelled`] instead of simulating to
    /// completion. The default ignores the token and runs normally —
    /// analytic baselines finish in microseconds, so there is nothing to
    /// cancel. An un-cancelled run must be byte-identical to
    /// [`Engine::run`].
    ///
    /// # Errors
    ///
    /// Everything [`Engine::run`] returns, plus
    /// [`EngineError::Cancelled`] when the token fires mid-run.
    fn run_cancellable(
        &self,
        a: &SparseMatrix,
        b: &SparseMatrix,
        cancel: &CancelToken,
    ) -> Result<EngineRun, EngineError> {
        let _ = cancel;
        self.run(a, b)
    }

    /// A snapshot of the engine's telemetry registry, when the engine
    /// records one and it is enabled. Analytic baselines (and engines
    /// built without telemetry) return `None` — the default.
    fn telemetry(&self) -> Option<TelemetrySnapshot> {
        None
    }

    /// Canonical revision string for this engine's *result-affecting*
    /// configuration: two engines with equal fingerprints must produce
    /// bitwise-identical [`EngineRun`]s on identical operands. Result
    /// caches fold this into the content key, so a configuration knob
    /// (or model revision) that changes outputs without changing the
    /// display name still invalidates cached cells.
    ///
    /// The default covers engines whose only knob is their PE count;
    /// engines with richer configuration (e.g. [`SigmaSim`]) override it
    /// with a full canonical key.
    fn fingerprint(&self) -> String {
        format!("{}#pes={}", self.name(), self.pes())
    }
}

impl<E: Engine + ?Sized> Engine for &E {
    fn name(&self) -> String {
        (**self).name()
    }
    fn pes(&self) -> usize {
        (**self).pes()
    }
    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        (**self).run(a, b)
    }
    fn run_cancellable(
        &self,
        a: &SparseMatrix,
        b: &SparseMatrix,
        cancel: &CancelToken,
    ) -> Result<EngineRun, EngineError> {
        (**self).run_cancellable(a, b, cancel)
    }
    fn telemetry(&self) -> Option<TelemetrySnapshot> {
        (**self).telemetry()
    }
    fn fingerprint(&self) -> String {
        (**self).fingerprint()
    }
}

impl<E: Engine + ?Sized> Engine for Box<E> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn pes(&self) -> usize {
        (**self).pes()
    }
    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        (**self).run(a, b)
    }
    fn run_cancellable(
        &self,
        a: &SparseMatrix,
        b: &SparseMatrix,
        cancel: &CancelToken,
    ) -> Result<EngineRun, EngineError> {
        (**self).run_cancellable(a, b, cancel)
    }
    fn telemetry(&self) -> Option<TelemetrySnapshot> {
        (**self).telemetry()
    }
    fn fingerprint(&self) -> String {
        (**self).fingerprint()
    }
}

impl Engine for SigmaSim {
    fn name(&self) -> String {
        format!(
            "SIGMA {}x{} ({})",
            self.config().num_dpes(),
            self.config().dpe_size(),
            self.config().dataflow().name()
        )
    }

    fn pes(&self) -> usize {
        self.config().total_pes()
    }

    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        let (run, trace) = self.run_gemm_traced(a, b)?;
        Ok(EngineRun { result: run.result, stats: run.stats, trace: Some(trace) })
    }

    fn run_cancellable(
        &self,
        a: &SparseMatrix,
        b: &SparseMatrix,
        cancel: &CancelToken,
    ) -> Result<EngineRun, EngineError> {
        let (run, trace) = self.run_gemm_traced_cancellable(a, b, cancel)?;
        Ok(EngineRun { result: run.result, stats: run.stats, trace: Some(trace) })
    }

    fn telemetry(&self) -> Option<TelemetrySnapshot> {
        let handle = self.telemetry_handle();
        handle.is_enabled().then(|| handle.snapshot())
    }

    fn fingerprint(&self) -> String {
        format!("sigma-sim/{}", self.config().canonical_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Dataflow, SigmaConfig};
    use sigma_matrix::gen::{sparse_uniform, Density};

    fn sim() -> SigmaSim {
        SigmaSim::new(SigmaConfig::new(2, 8, 16, Dataflow::WeightStationary).unwrap()).unwrap()
    }

    #[test]
    fn sigma_runs_through_the_trait_object() {
        let engine: Box<dyn Engine> = Box::new(sim());
        assert!(engine.name().starts_with("SIGMA 2x8"));
        assert_eq!(engine.pes(), 16);
        let a = sparse_uniform(6, 9, Density::new(0.5).unwrap(), 3);
        let b = sparse_uniform(9, 5, Density::new(0.5).unwrap(), 4);
        let run = engine.run(&a, &b).unwrap();
        let reference = a.to_dense().matmul(&b.to_dense());
        assert!(run.result.approx_eq(&reference, 1e-3 * 9.0));
        assert!(run.stats.total_cycles() > 0);
        let trace = run.trace.expect("SIGMA returns a trace");
        assert!(trace.consistent_with(&run.stats));
    }

    #[test]
    fn trait_run_matches_direct_run() {
        let s = sim();
        let a = sparse_uniform(7, 11, Density::new(0.4).unwrap(), 8);
        let b = sparse_uniform(11, 6, Density::new(0.7).unwrap(), 9);
        let via_trait = Engine::run(&s, &a, &b).unwrap();
        let direct = s.run_gemm(&a, &b).unwrap();
        assert_eq!(via_trait.result, direct.result);
        assert_eq!(via_trait.stats, direct.stats);
    }

    #[test]
    fn dimension_mismatch_surfaces_as_engine_error() {
        let a = sparse_uniform(4, 5, Density::DENSE, 1);
        let b = sparse_uniform(6, 4, Density::DENSE, 2);
        let err = Engine::run(&sim(), &a, &b).unwrap_err();
        assert_eq!(err, EngineError::DimensionMismatch { k_a: 5, k_b: 6 });
        assert!(err.to_string().contains("dimension mismatch"));
    }

    #[test]
    fn telemetry_snapshot_flows_through_the_trait() {
        let cfg = SigmaConfig::new(2, 8, 16, Dataflow::WeightStationary).unwrap();
        let off: Box<dyn Engine> = Box::new(SigmaSim::new(cfg).unwrap());
        assert!(off.telemetry().is_none(), "disabled telemetry reports None");
        let on: Box<dyn Engine> = Box::new(SigmaSim::new(cfg.with_telemetry(true)).unwrap());
        let a = sparse_uniform(6, 9, Density::new(0.5).unwrap(), 3);
        let b = sparse_uniform(9, 5, Density::new(0.5).unwrap(), 4);
        on.run(&a, &b).unwrap();
        let snap = on.telemetry().expect("enabled telemetry reports a snapshot");
        assert!(snap.enabled);
        assert!(snap.counter("stream_steps").unwrap() > 0);
    }

    #[test]
    fn references_and_boxes_are_engines_too() {
        let s = sim();
        let by_ref: &dyn Engine = &s;
        assert_eq!(by_ref.pes(), (&by_ref).pes());
        let boxed: Box<dyn Engine> = Box::new(sim());
        assert_eq!(boxed.name(), by_ref.name());
    }

    #[test]
    fn sigma_fingerprint_tracks_result_affecting_knobs() {
        let cfg = SigmaConfig::new(2, 8, 16, Dataflow::WeightStationary).unwrap();
        let base = SigmaSim::new(cfg).unwrap().fingerprint();
        assert!(base.starts_with("sigma-sim/c1;"), "versioned prefix: {base}");
        // Knobs that change results must change the fingerprint...
        let rerouted = SigmaSim::new(cfg.with_route_cache(false)).unwrap();
        assert_ne!(base, rerouted.fingerprint());
        let ticked = SigmaSim::new(cfg.with_lockstep(true)).unwrap();
        assert_ne!(base, ticked.fingerprint());
        // ...while observational telemetry must not.
        let observed = SigmaSim::new(cfg.with_telemetry(true)).unwrap();
        assert_eq!(base, observed.fingerprint());
    }

    #[test]
    fn fingerprint_forwards_through_refs_and_boxes() {
        let s = sim();
        let direct = s.fingerprint();
        let by_ref: &dyn Engine = &s;
        assert_eq!(by_ref.fingerprint(), direct);
        let boxed: Box<dyn Engine> = Box::new(sim());
        assert_eq!(boxed.fingerprint(), direct);
    }

    #[test]
    fn default_fingerprint_names_the_engine_and_pe_count() {
        struct Toy;
        impl Engine for Toy {
            fn name(&self) -> String {
                "Toy".into()
            }
            fn pes(&self) -> usize {
                64
            }
            fn run(&self, _: &SparseMatrix, _: &SparseMatrix) -> Result<EngineRun, EngineError> {
                Err(EngineError::Config("toy".into()))
            }
        }
        assert_eq!(Toy.fingerprint(), "Toy#pes=64");
    }
}
