//! The global sparsity controller — the bitmap walkthrough of Fig. 5.
//!
//! For each GEMM the controller consumes the two bitmap-compressed
//! operands and produces the mapping that drives the datapath:
//!
//! 1. **REGOR** (Step ii): a row-wise OR across the streaming bitmap —
//!    one bit per contraction index `k` saying whether *any* streaming
//!    element with that `k` exists.
//! 2. **stationary′** (Step ii): the stationary bitmap AND-ed with REGOR,
//!    dropping stationary non-zeros that would only ever multiply zeros.
//! 3. **Counter assignment / folds** (Steps iii–v): stationary′ non-zeros
//!    are packed row-major onto the multipliers; when they exceed the
//!    array, execution folds. Each contiguous run of one stationary group
//!    (a row of the canonical stationary operand) becomes one FAN cluster
//!    (`vecID`).
//! 4. **SRC–DEST tables** (Step v): per Flex-DPE pairs of streaming-value
//!    counter → multiplier counter, from which the Benes routing bits are
//!    derived (Step vi).
//! 5. **Output bitmap** (Step v): which outputs will receive any non-zero
//!    contribution.
//!
//! The controller works in a *canonical orientation*: the stationary
//! operand is a `G × K` matrix whose rows are dot-product groups and whose
//! columns are the contraction dimension; the streaming operand is
//! `K × S` with one streamed vector per step. The engine maps either
//! GEMM dataflow onto this orientation (weight-stationary transposes the
//! `KN` operand; input-stationary uses `MK` directly).

use crate::SigmaError;
use sigma_matrix::{Bitmap, SparseMatrix};

/// The order in which stationary′ non-zeros are packed into folds.
///
/// * [`PackingOrder::GroupMajor`] — the Fig. 5 walkthrough order:
///   row-major over the stationary operand, so a fold holds a run of
///   complete dot-product groups. Minimizes cross-fold partial sums.
/// * [`PackingOrder::ContractionMajor`] — a fold holds a contiguous
///   *contraction slice* across **all** groups. Every streamed value in
///   the slice is multicast to up to `groups` multipliers, minimizing
///   SRAM traffic and per-step sends (the better choice when the
///   streaming bandwidth is narrow), at the cost of partial sums for
///   every group accumulating across folds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PackingOrder {
    /// Row-major over groups (the paper's walkthrough order).
    #[default]
    GroupMajor,
    /// Contraction-slice-major across all groups.
    ContractionMajor,
}

/// One stationary′ non-zero mapped onto a multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappedElement {
    /// Dot-product group (row of the canonical stationary operand).
    pub group: usize,
    /// Contraction index (column of the canonical stationary operand).
    pub contraction: usize,
    /// The stationary value held in the multiplier's buffer.
    pub value: f32,
}

/// One stationary fold: the slice of stationary′ resident on the array at
/// once, with its FAN cluster assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fold {
    /// Mapped elements in PE order (packed, `len() <= total_pes`).
    pub elements: Vec<MappedElement>,
    /// `vec_ids[i]` is the FAN cluster of PE `i` (dense rank of the
    /// element's group within this fold); `None` for unoccupied PEs.
    /// Length equals `total_pes`.
    pub vec_ids: Vec<Option<u32>>,
    /// Cluster id → group index.
    pub cluster_groups: Vec<usize>,
    /// Sorted distinct contraction indices present in this fold — the
    /// streaming values that must be fetched per step while this fold is
    /// resident.
    pub distinct_contractions: Vec<usize>,
}

impl Fold {
    /// Number of occupied PEs.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.elements.len()
    }
}

/// The controller's complete mapping plan for one GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerPlan {
    /// REGOR bits: `stream_or[k]` is true when streaming row `k` has any
    /// non-zero.
    pub stream_or: Vec<bool>,
    /// Non-zeros surviving the stationary′ filter.
    pub stationary_prime_nnz: u64,
    /// Stationary non-zeros dropped because no streaming partner exists.
    pub dropped_stationary: u64,
    /// The stationary folds, in execution order.
    pub folds: Vec<Fold>,
}

impl ControllerPlan {
    /// Builds the plan for a canonical `G × K` stationary operand and a
    /// `K × S` streaming bitmap, on an array of `total_pes` multipliers.
    ///
    /// # Panics
    ///
    /// Panics if the operands' contraction dimensions disagree or
    /// `total_pes == 0`.
    #[must_use]
    pub fn build(stationary: &SparseMatrix, streaming: &Bitmap, total_pes: usize) -> Self {
        Self::build_with_order(stationary, streaming, total_pes, PackingOrder::GroupMajor)
    }

    /// Like [`ControllerPlan::build`] with an explicit [`PackingOrder`].
    ///
    /// # Panics
    ///
    /// Panics if the operands' contraction dimensions disagree or
    /// `total_pes == 0`.
    #[must_use]
    pub fn build_with_order(
        stationary: &SparseMatrix,
        streaming: &Bitmap,
        total_pes: usize,
        order: PackingOrder,
    ) -> Self {
        assert_eq!(
            stationary.cols(),
            streaming.rows(),
            "stationary K ({}) must equal streaming K ({})",
            stationary.cols(),
            streaming.rows()
        );
        assert!(total_pes > 0, "total_pes must be non-zero");

        // Step ii: REGOR + stationary' filter.
        let stream_or = streaming.rows_or();
        let mut mapped = Vec::new();
        let mut dropped = 0u64;
        for (g, k, v) in stationary.iter() {
            if stream_or[k] {
                mapped.push(MappedElement { group: g, contraction: k, value: v });
            } else {
                dropped += 1;
            }
        }
        let nnz = mapped.len() as u64;

        // Steps iii-v: cut into folds, assign clusters.
        let chunks: Vec<Vec<MappedElement>> = match order {
            PackingOrder::GroupMajor => {
                mapped.chunks(total_pes).map(<[MappedElement]>::to_vec).collect()
            }
            PackingOrder::ContractionMajor => Self::contraction_major_folds(mapped, total_pes),
        };
        let mut folds = Vec::new();
        for chunk in chunks {
            let mut vec_ids = vec![None; total_pes];
            let mut cluster_groups = Vec::new();
            let mut contractions = Vec::new();
            for (i, e) in chunk.iter().enumerate() {
                let new_cluster = cluster_groups.last() != Some(&e.group);
                if new_cluster {
                    cluster_groups.push(e.group);
                }
                #[allow(clippy::cast_possible_truncation)]
                let cid = (cluster_groups.len() - 1) as u32;
                vec_ids[i] = Some(cid);
                contractions.push(e.contraction);
            }
            contractions.sort_unstable();
            contractions.dedup();
            folds.push(Fold {
                elements: chunk,
                vec_ids,
                cluster_groups,
                distinct_contractions: contractions,
            });
        }

        ControllerPlan { stream_or, stationary_prime_nnz: nnz, dropped_stationary: dropped, folds }
    }

    /// Builds contraction-major folds: greedily grow a contiguous
    /// contraction range until its element count would exceed the array,
    /// then emit the fold with its elements ordered by (group, k) so FAN
    /// clusters stay contiguous. A single contraction column larger than
    /// the array is split across folds.
    fn contraction_major_folds(
        mapped: Vec<MappedElement>,
        total_pes: usize,
    ) -> Vec<Vec<MappedElement>> {
        // Bucket by contraction index (mapped arrives (group, k)-sorted).
        let mut by_k: std::collections::BTreeMap<usize, Vec<MappedElement>> =
            std::collections::BTreeMap::new();
        for e in mapped {
            by_k.entry(e.contraction).or_default().push(e);
        }
        let mut folds: Vec<Vec<MappedElement>> = Vec::new();
        let mut current: Vec<MappedElement> = Vec::new();
        for (_, column) in by_k {
            let mut column = column;
            // Oversized columns split across folds on their own.
            while current.len() + column.len() > total_pes {
                let room = total_pes - current.len();
                let rest = column.split_off(room.min(column.len()));
                current.extend(column);
                current.sort_by_key(|e| (e.group, e.contraction));
                folds.push(std::mem::take(&mut current));
                column = rest;
            }
            current.extend(column);
        }
        if !current.is_empty() {
            current.sort_by_key(|e| (e.group, e.contraction));
            folds.push(current);
        }
        folds
    }

    /// Step v's output bitmap: output `(group, step)` is set when some
    /// non-zero stationary element of `group` meets a non-zero streaming
    /// element at `step`.
    #[must_use]
    pub fn output_bitmap(
        &self,
        stationary: &SparseMatrix,
        streaming: &Bitmap,
        groups: usize,
    ) -> Bitmap {
        let steps = streaming.cols();
        let mut out = Bitmap::new(groups, steps);
        for fold in &self.folds {
            for e in &fold.elements {
                for s in 0..steps {
                    if streaming.get(e.contraction, s) {
                        out.set(e.group, s, true);
                    }
                }
            }
        }
        let _ = stationary; // shape context only; elements already filtered
        out
    }

    /// Step v's SRC–DEST table for one fold, one Flex-DPE and one
    /// streaming step: pairs of (streaming counter, multiplier counter).
    ///
    /// The streaming counter is the rank of the non-zero within the
    /// streamed vector (it resets each step); the multiplier counter is
    /// the PE's index within its Flex-DPE (it resets at `dpe_size`,
    /// Fig. 5 Step v).
    #[must_use]
    pub fn src_dest_table(
        &self,
        fold_idx: usize,
        dpe: usize,
        dpe_size: usize,
        streaming: &Bitmap,
        step: usize,
    ) -> Vec<(u32, u32)> {
        let fold = &self.folds[fold_idx];
        // Streaming counters: rank of each set bit in column `step`.
        let mut src_counter = vec![None; streaming.rows()];
        let mut rank = 0u32;
        for (k, slot) in src_counter.iter_mut().enumerate() {
            if streaming.get(k, step) {
                *slot = Some(rank);
                rank += 1;
            }
        }
        let lo = dpe * dpe_size;
        let hi = (lo + dpe_size).min(fold.elements.len());
        let mut table = Vec::new();
        if lo >= fold.elements.len() {
            return table;
        }
        for (slot, e) in fold.elements[lo..hi].iter().enumerate() {
            if let Some(src) = src_counter[e.contraction] {
                #[allow(clippy::cast_possible_truncation)]
                table.push((src, slot as u32));
            }
        }
        table
    }

    /// Naive Benes routing bits for a SRC–DEST table entry (Step vi):
    /// the signed offset `dest − src` the walkthrough example uses.
    #[must_use]
    pub fn routing_offset(src: u32, dest: u32) -> i64 {
        i64::from(dest) - i64::from(src)
    }

    /// The Benes distribution request for one fold, Flex-DPE and
    /// streaming step: `request[slot] = Some(rank)` where `rank` is the
    /// streamed value's arrival position (the rank of the slot's
    /// contraction index among the step's non-zeros, restricted to this
    /// fold's needed set).
    ///
    /// Within one FAN cluster the ranks increase with the slot index, so
    /// the request is piecewise monotone with at most one restart per
    /// cluster boundary.
    #[must_use]
    pub fn streaming_request(
        &self,
        fold_idx: usize,
        dpe: usize,
        dpe_size: usize,
        streaming: &Bitmap,
        step: usize,
    ) -> Vec<Option<usize>> {
        let fold = &self.folds[fold_idx];
        // Rank of each needed non-zero streamed value, in contraction order.
        let mut rank_of = vec![None; streaming.rows()];
        let mut rank = 0usize;
        for &k in &fold.distinct_contractions {
            if streaming.get(k, step) {
                rank_of[k] = Some(rank);
                rank += 1;
            }
        }
        let lo = dpe * dpe_size;
        let hi = (lo + dpe_size).min(fold.elements.len());
        let mut req = vec![None; dpe_size];
        if lo < fold.elements.len() {
            for (slot, e) in fold.elements[lo..hi].iter().enumerate() {
                req[slot] = rank_of[e.contraction];
            }
        }
        req
    }

    /// Routes one fold/DPE/step distribution request on a real Benes
    /// network and returns the number of serialized passes it needs
    /// (1 when the request is monotone — the common case; at most the
    /// number of clusters resident in the Flex-DPE otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::DpeSizeNotPowerOfTwo`] if `dpe_size` is not
    /// a valid Benes size, or [`SigmaError::Internal`] if the request
    /// fails to route (impossible for controller-built requests).
    pub fn distribution_passes(
        &self,
        fold_idx: usize,
        dpe: usize,
        dpe_size: usize,
        streaming: &Bitmap,
        step: usize,
    ) -> Result<usize, SigmaError> {
        let net = sigma_interconnect::BenesNetwork::new(dpe_size)
            .map_err(|_| SigmaError::DpeSizeNotPowerOfTwo(dpe_size))?;
        let req = self.streaming_request(fold_idx, dpe, dpe_size, streaming, step);
        Ok(net
            .route_general_multicast(&req)
            .map_err(|e| {
                SigmaError::Internal(format!("controller-built request failed to route: {e}"))
            })?
            .pass_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::Matrix;

    /// The Fig. 5-style toy operands: MK stationary (4x4), KN streaming (4x3).
    fn toy() -> (SparseMatrix, Bitmap) {
        let stat = SparseMatrix::from_dense(&Matrix::from_rows(&[
            &[1.0, 0.0, 2.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[3.0, 4.0, 0.0, 5.0],
            &[0.0, 0.0, 6.0, 0.0],
        ]));
        // Streaming occupancy (only the metadata matters here):
        //   k0: steps {0, 2}, k1: step {1}, k2: steps {0, 1},
        //   k3: never streams — REGOR filters it.
        let mut streaming = Bitmap::new(4, 3);
        for (k, step) in [(0, 0), (0, 2), (1, 1), (2, 0), (2, 1)] {
            streaming.set(k, step, true);
        }
        (stat, streaming)
    }

    #[test]
    fn regor_filters_useless_stationary() {
        let (stat, stream) = toy();
        let plan = ControllerPlan::build(&stat, &stream, 16);
        assert_eq!(plan.stream_or, vec![true, true, true, false]);
        // Element (2, 3) = 5.0 is dropped: k=3 has no streaming partner.
        assert_eq!(plan.dropped_stationary, 1);
        assert_eq!(plan.stationary_prime_nnz, 5);
    }

    #[test]
    fn clusters_follow_groups() {
        let (stat, stream) = toy();
        let plan = ControllerPlan::build(&stat, &stream, 16);
        assert_eq!(plan.folds.len(), 1);
        let fold = &plan.folds[0];
        assert_eq!(fold.occupied(), 5);
        // Groups 0, 2, 3 survive; group 1 is empty.
        assert_eq!(fold.cluster_groups, vec![0, 2, 3]);
        assert_eq!(&fold.vec_ids[..5], &[Some(0), Some(0), Some(1), Some(1), Some(2)]);
        assert_eq!(fold.vec_ids[5], None);
        assert_eq!(fold.distinct_contractions, vec![0, 1, 2]);
    }

    #[test]
    fn folding_splits_at_pe_capacity() {
        let (stat, stream) = toy();
        let plan = ControllerPlan::build(&stat, &stream, 2);
        assert_eq!(plan.folds.len(), 3); // 5 elements on 2 PEs
        assert_eq!(plan.folds[0].occupied(), 2);
        assert_eq!(plan.folds[2].occupied(), 1);
        // A group split across folds appears in both folds' clusters.
        assert_eq!(plan.folds[1].cluster_groups, vec![2]);
    }

    #[test]
    fn output_bitmap_marks_nonzero_outputs() {
        let (stat, stream) = toy();
        let plan = ControllerPlan::build(&stat, &stream, 16);
        let out = plan.output_bitmap(&stat, &stream, 4);
        // Group 0 holds k={0,2}: steps 0 (k0,k2), 1 (k2), 2 (k0) are set.
        assert!(out.get(0, 0) && out.get(0, 1) && out.get(0, 2));
        // Group 1 is empty.
        assert!(!out.get(1, 0) && !out.get(1, 1) && !out.get(1, 2));
        // Group 3 holds k=2: steps 0 and 1.
        assert!(out.get(3, 0) && out.get(3, 1) && !out.get(3, 2));
    }

    #[test]
    fn src_dest_tables_pair_counters() {
        let (stat, stream) = toy();
        let plan = ControllerPlan::build(&stat, &stream, 4);
        // Fold 0 on one 4-wide DPE: elements (0,k0) (0,k2) (2,k0) (2,k1).
        // Step 0 streams k0 (rank 0) and k2 (rank 1).
        let t = plan.src_dest_table(0, 0, 4, &stream, 0);
        assert_eq!(t, vec![(0, 0), (1, 1), (0, 2)]);
        // Step 1 streams k1 (rank 0) and k2 (rank 1).
        let t1 = plan.src_dest_table(0, 0, 4, &stream, 1);
        assert_eq!(t1, vec![(1, 1), (0, 3)]);
        // Out-of-range DPE yields an empty table.
        assert!(plan.src_dest_table(0, 1, 4, &stream, 0).is_empty());
    }

    #[test]
    fn routing_offsets() {
        assert_eq!(ControllerPlan::routing_offset(0, 3), 3);
        assert_eq!(ControllerPlan::routing_offset(3, 0), -3);
    }

    #[test]
    fn fully_dense_maps_everything() {
        let stat = SparseMatrix::from_dense(&Matrix::from_fn(3, 3, |_, _| 1.0));
        let stream = Bitmap::new(3, 2);
        let mut stream = stream;
        for k in 0..3 {
            stream.set(k, 0, true);
        }
        let plan = ControllerPlan::build(&stat, &stream, 16);
        assert_eq!(plan.stationary_prime_nnz, 9);
        assert_eq!(plan.dropped_stationary, 0);
    }

    #[test]
    fn all_zero_streaming_drops_all() {
        let stat = SparseMatrix::from_dense(&Matrix::from_fn(3, 3, |_, _| 1.0));
        let stream = Bitmap::new(3, 2);
        let plan = ControllerPlan::build(&stat, &stream, 16);
        assert_eq!(plan.stationary_prime_nnz, 0);
        assert_eq!(plan.dropped_stationary, 9);
        assert!(plan.folds.is_empty());
    }

    #[test]
    fn streaming_requests_route_with_bounded_passes() {
        let (stat, stream) = toy();
        let plan = ControllerPlan::build(&stat, &stream, 8);
        for step in 0..stream.cols() {
            for dpe in 0..2 {
                let req = plan.streaming_request(0, dpe, 4, &stream, step);
                let passes = plan.distribution_passes(0, dpe, 4, &stream, step).unwrap();
                // Pass count never exceeds the clusters resident in the DPE.
                let clusters_here: std::collections::HashSet<_> = plan.folds[0].vec_ids
                    [dpe * 4..(dpe * 4 + 4).min(plan.folds[0].occupied())]
                    .iter()
                    .flatten()
                    .collect();
                assert!(
                    passes <= clusters_here.len().max(1),
                    "step {step} dpe {dpe}: {passes} passes for {req:?}"
                );
                // And the routing actually delivers the request.
                let net = sigma_interconnect::BenesNetwork::new(4).unwrap();
                let routing = net.route_general_multicast(&req).unwrap();
                let inputs: Vec<Option<usize>> = (0..4).map(Some).collect();
                let out = routing.apply(&inputs);
                for (slot, want) in req.iter().enumerate() {
                    assert_eq!(out[slot], *want);
                }
            }
        }
    }

    #[test]
    fn streaming_request_ranks_follow_arrival_order() {
        let (stat, stream) = toy();
        let plan = ControllerPlan::build(&stat, &stream, 16);
        // Step 0 streams k0 (rank 0) and k2 (rank 1); fold elements are
        // (0,k0) (0,k2) (2,k0) (2,k1) (3,k2).
        let req = plan.streaming_request(0, 0, 16, &stream, 0);
        assert_eq!(&req[..5], &[Some(0), Some(1), Some(0), None, Some(1)]);
    }

    #[test]
    fn contraction_major_limits_sends_per_fold() {
        // 16 groups x 8 contractions, dense, on 32 PEs: group-major folds
        // span 4 full rows (8 distinct k each); contraction-major folds
        // span 2 k-columns across all 16 groups (2 distinct k each).
        let stat = SparseMatrix::from_dense(&Matrix::from_fn(16, 8, |_, _| 1.0));
        let mut stream = Bitmap::new(8, 3);
        for kk in 0..8 {
            stream.set(kk, 0, true);
        }
        let gm = ControllerPlan::build_with_order(&stat, &stream, 32, PackingOrder::GroupMajor);
        let cm =
            ControllerPlan::build_with_order(&stat, &stream, 32, PackingOrder::ContractionMajor);
        assert_eq!(gm.folds.len(), 4);
        assert_eq!(cm.folds.len(), 4);
        assert_eq!(gm.folds[0].distinct_contractions.len(), 8);
        assert_eq!(cm.folds[0].distinct_contractions.len(), 2);
        // Same total work either way.
        let total = |p: &ControllerPlan| -> usize { p.folds.iter().map(Fold::occupied).sum() };
        assert_eq!(total(&gm), total(&cm));
    }

    #[test]
    fn contraction_major_keeps_clusters_contiguous() {
        let stat = SparseMatrix::from_dense(&Matrix::from_fn(6, 7, |g, k| {
            if (g + k) % 3 == 0 {
                1.0
            } else {
                0.0
            }
        }));
        let mut stream = Bitmap::new(7, 2);
        for kk in 0..7 {
            stream.set(kk, 0, true);
        }
        let cm =
            ControllerPlan::build_with_order(&stat, &stream, 8, PackingOrder::ContractionMajor);
        for fold in &cm.folds {
            // Contiguity: every vecID forms a single run.
            let mut seen = std::collections::HashSet::new();
            let mut prev = None;
            for id in fold.vec_ids.iter().flatten() {
                if prev != Some(*id) {
                    assert!(seen.insert(*id), "cluster {id} split in {fold:?}");
                }
                prev = Some(*id);
            }
            // Elements sorted by (group, k) within the fold.
            for w in fold.elements.windows(2) {
                assert!((w[0].group, w[0].contraction) <= (w[1].group, w[1].contraction));
            }
        }
    }

    #[test]
    fn oversized_contraction_column_splits() {
        // One k-column with more non-zeros than the array.
        let stat = SparseMatrix::from_dense(&Matrix::from_fn(10, 1, |_, _| 1.0));
        let mut stream = Bitmap::new(1, 1);
        stream.set(0, 0, true);
        let cm =
            ControllerPlan::build_with_order(&stat, &stream, 4, PackingOrder::ContractionMajor);
        assert_eq!(cm.folds.len(), 3);
        assert_eq!(cm.folds[0].occupied(), 4);
        assert_eq!(cm.folds[2].occupied(), 2);
    }

    #[test]
    #[should_panic(expected = "must equal streaming K")]
    fn dimension_mismatch_panics() {
        let stat = SparseMatrix::from_dense(&Matrix::zeros(2, 3));
        let stream = Bitmap::new(4, 2);
        let _ = ControllerPlan::build(&stat, &stream, 4);
    }
}
