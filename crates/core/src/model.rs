//! Analytic cycle model — the same Table-II accounting as the functional
//! engine, computed from shapes and densities alone.
//!
//! The paper's evaluation GEMMs reach dimensions of 500 000; simulating
//! them element by element is pointless when the latency structure is
//! regular. This estimator reproduces the functional engine's accounting
//! in expectation and is cross-validated against it on small GEMMs in
//! `tests/` (the two must agree within a few percent).

use crate::config::{Dataflow, SigmaConfig};
use crate::stats::CycleStats;
use sigma_interconnect::log2_ceil;
use sigma_matrix::GemmShape;

/// A GEMM described by shape and operand densities — the unit of work for
/// the analytic models (SIGMA's and the baselines').
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmProblem {
    /// The (M, N, K) dimensions.
    pub shape: GemmShape,
    /// Density (non-zero fraction) of the `MK` operand.
    pub density_a: f64,
    /// Density (non-zero fraction) of the `KN` operand.
    pub density_b: f64,
}

impl GemmProblem {
    /// A fully dense problem.
    #[must_use]
    pub fn dense(shape: GemmShape) -> Self {
        Self { shape, density_a: 1.0, density_b: 1.0 }
    }

    /// A sparse problem with the given densities.
    ///
    /// # Panics
    ///
    /// Panics if a density is outside `[0, 1]`.
    #[must_use]
    pub fn sparse(shape: GemmShape, density_a: f64, density_b: f64) -> Self {
        assert!((0.0..=1.0).contains(&density_a), "density_a out of range");
        assert!((0.0..=1.0).contains(&density_b), "density_b out of range");
        Self { shape, density_a, density_b }
    }

    /// Expected useful (both-operands-non-zero) MACs.
    #[must_use]
    pub fn useful_macs(&self) -> f64 {
        self.density_a * self.density_b * self.shape.macs() as f64
    }
}

/// Estimates the Table-II stats of running `p` on a SIGMA `config`.
#[must_use]
pub fn estimate(config: &SigmaConfig, p: &GemmProblem) -> CycleStats {
    match config.dataflow() {
        Dataflow::InputStationary => {
            estimate_stationary(config, p.shape.m, p.shape.k, p.shape.n, p.density_a, p.density_b)
        }
        Dataflow::WeightStationary => {
            estimate_stationary(config, p.shape.n, p.shape.k, p.shape.m, p.density_b, p.density_a)
        }
        Dataflow::NoLocalReuse => estimate_no_local_reuse(config, p),
    }
}

/// Estimates both stationary dataflows and returns the better (the paper's
/// evaluation methodology).
#[must_use]
pub fn estimate_best(config: &SigmaConfig, p: &GemmProblem) -> (Dataflow, CycleStats) {
    let ws = estimate(&config.with_dataflow(Dataflow::WeightStationary), p);
    let is = estimate(&config.with_dataflow(Dataflow::InputStationary), p);
    if ws.total_cycles() <= is.total_cycles() {
        (Dataflow::WeightStationary, ws)
    } else {
        (Dataflow::InputStationary, is)
    }
}

/// Canonical stationary estimate: `groups x k` stationary at density
/// `d_stat`, `k x steps` streaming at density `d_str`.
fn estimate_stationary(
    config: &SigmaConfig,
    groups: usize,
    k: usize,
    steps: usize,
    d_stat: f64,
    d_str: f64,
) -> CycleStats {
    let pes = config.total_pes() as f64;
    let bw = config.input_bandwidth() as f64;
    let stream_bw = config.stream_bandwidth() as f64;

    // REGOR: a contraction column survives if any of `steps` streaming
    // elements in its row is non-zero.
    let p_keep = 1.0 - (1.0 - d_str).powi(steps.min(10_000) as i32);
    let k_live = k as f64 * p_keep;
    let nnz = (d_stat * groups as f64 * k_live).round();
    if nnz < 1.0 {
        return CycleStats { pes: config.total_pes() as u64, ..CycleStats::default() };
    }

    let folds = (nnz / pes).ceil();
    let full_fold_occupancy = nnz.min(pes);

    // Loading: each fold's occupants unicast at `bw` words/cycle. With
    // double buffering, every load after the first hides behind the
    // previous fold's streaming; only the residue shows.
    let per_full_load = (pes / bw).ceil();
    let loading_raw = {
        let rem = nnz - (folds - 1.0).max(0.0) * pes;
        (folds - 1.0).max(0.0) * per_full_load + (rem / bw).ceil()
    };

    // Distinct contraction indices resident in a fold of `occupancy`
    // elements. Group-major: the fold covers `occupancy / elems_per_row`
    // consecutive groups; column k appears unless all those rows miss it.
    // Contraction-major: the fold is a k-slice across all groups, so each
    // live column contributes ~`d_stat * groups` elements. A fold can
    // never hold more distinct columns than elements.
    let elems_per_row = (d_stat * k_live).max(1e-9);
    let elems_per_column = (d_stat * groups as f64).max(1e-9);
    let packing = config.packing_order();
    let k_in_fold = move |occupancy: f64| -> f64 {
        match packing {
            crate::controller::PackingOrder::GroupMajor => {
                let rows = (occupancy / elems_per_row).max(1.0).min(groups as f64);
                (k_live * (1.0 - (1.0 - d_stat).powf(rows))).min(occupancy)
            }
            crate::controller::PackingOrder::ContractionMajor => {
                (occupancy / elems_per_column).ceil().clamp(1.0, k_live).min(occupancy)
            }
        }
    };

    // Streaming: per step, the non-zero streaming values among the fold's
    // resident columns are sent (min 1 cycle per step). The partial last
    // fold holds fewer columns, so it is modeled separately.
    let full_folds = (folds - 1.0).max(0.0);
    let last_occupancy = nnz - full_folds * pes;
    let cycles_per_step_full = (k_in_fold(full_fold_occupancy) * d_str / stream_bw).ceil().max(1.0);
    let cycles_per_step_last = (k_in_fold(last_occupancy) * d_str / stream_bw).ceil().max(1.0);
    let sends_per_step =
        (full_folds * k_in_fold(full_fold_occupancy) + k_in_fold(last_occupancy)) * d_str / folds;
    let streaming = (full_folds * cycles_per_step_full + cycles_per_step_last) * steps as f64;

    let loading = if config.double_buffered() {
        // Hidden behind the previous fold's streaming when it fits.
        let stream_per_fold = cycles_per_step_full * steps as f64;
        let visible_rest = (folds - 1.0).max(0.0) * (per_full_load - stream_per_fold).max(0.0);
        let first = (nnz.min(pes) / bw).ceil();
        first + visible_rest
    } else {
        loading_raw
    };

    let useful = nnz * steps as f64 * d_str;
    let issued = nnz * steps as f64;
    // Per-fold drain: the FAN completes a cluster of size s in
    // ~ceil(log2(s)) + 1 levels (0 for singletons, capped by the tree
    // depth). Cluster size depends on the packing order: a group's full
    // row for group-major, its slice within the fold for
    // contraction-major.
    let cluster_size = match config.packing_order() {
        crate::controller::PackingOrder::GroupMajor => elems_per_row.min(full_fold_occupancy),
        crate::controller::PackingOrder::ContractionMajor => {
            (full_fold_occupancy / (groups as f64).min(full_fold_occupancy)).max(1.0)
        }
    };
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let drain_per_fold = if cluster_size <= 1.0 {
        0
    } else {
        log2_ceil(cluster_size.ceil() as usize).min(log2_ceil(config.dpe_size()))
    };
    let add = folds * f64::from(drain_per_fold);
    let sram = nnz + folds * steps as f64 * sends_per_step;

    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    CycleStats {
        loading_cycles: loading as u64,
        streaming_cycles: streaming as u64,
        add_cycles: add as u64,
        folds: folds as u64,
        useful_macs: useful as u128,
        issued_macs: issued as u128,
        mapped_nonzeros: nnz as u64,
        occupied_slots: nnz as u64,
        pes: config.total_pes() as u64,
        sram_reads: sram as u64,
        ..CycleStats::default()
    }
}

fn estimate_no_local_reuse(config: &SigmaConfig, p: &GemmProblem) -> CycleStats {
    let pes = config.total_pes() as f64;
    let stream_bw = config.stream_bandwidth() as f64;
    let pairs = p.useful_macs();
    if pairs < 1.0 {
        return CycleStats { pes: config.total_pes() as u64, ..CycleStats::default() };
    }
    let waves = (pairs / pes).ceil();
    let streaming = (2.0 * pairs / stream_bw).ceil().max(waves);
    let add = waves * f64::from(log2_ceil(config.dpe_size()));
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    CycleStats {
        loading_cycles: 0,
        streaming_cycles: streaming as u64,
        add_cycles: add as u64,
        folds: waves as u64,
        useful_macs: pairs as u128,
        issued_macs: pairs as u128,
        mapped_nonzeros: 0,
        occupied_slots: 0,
        pes: config.total_pes() as u64,
        sram_reads: (2.0 * pairs) as u64,
        ..CycleStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SigmaConfig;

    fn cfg(df: Dataflow) -> SigmaConfig {
        SigmaConfig::new(4, 16, 16, df).unwrap()
    }

    #[test]
    fn dense_regular_estimate() {
        let p = GemmProblem::dense(GemmShape::new(64, 64, 64));
        let full_bw = SigmaConfig::new(4, 16, 64, Dataflow::InputStationary).unwrap();
        let s = estimate(&full_bw, &p);
        // 4096 stationary nnz on 64 PEs: 64 folds.
        assert_eq!(s.folds, 64);
        assert_eq!(s.mapped_nonzeros, 4096);
        assert_eq!(s.useful_macs, 64 * 64 * 64);
        assert_eq!(s.stationary_utilization(), 1.0);
        assert!(s.compute_efficiency() > 0.9);
        // At a quarter of the bandwidth, each step serializes 4x.
        let starved = estimate(&cfg(Dataflow::InputStationary), &p);
        assert!(starved.streaming_cycles >= 4 * s.streaming_cycles - 4);
        assert!((starved.compute_efficiency() - 0.25).abs() < 0.01);
    }

    #[test]
    fn sparsity_reduces_folds_and_latency() {
        let shape = GemmShape::new(64, 64, 64);
        let dense = estimate(&cfg(Dataflow::InputStationary), &GemmProblem::dense(shape));
        let sparse =
            estimate(&cfg(Dataflow::InputStationary), &GemmProblem::sparse(shape, 0.2, 1.0));
        assert!(sparse.folds < dense.folds);
        assert!(sparse.total_cycles() < dense.total_cycles());
        assert_eq!(sparse.stationary_utilization(), 1.0);
    }

    #[test]
    fn weight_stationary_swaps_roles() {
        let p = GemmProblem::sparse(GemmShape::new(8, 128, 32), 1.0, 0.5);
        let ws = estimate(&cfg(Dataflow::WeightStationary), &p);
        let is = estimate(&cfg(Dataflow::InputStationary), &p);
        // WS maps KN (sparse, 0.5 * 4096 = 2048 nnz), IS maps MK (256 nnz).
        assert_eq!(ws.mapped_nonzeros, 2048);
        assert_eq!(is.mapped_nonzeros, 256);
    }

    #[test]
    fn estimate_best_picks_min_latency() {
        let p = GemmProblem::sparse(GemmShape::new(512, 32, 64), 1.0, 1.0);
        let (df, s) = estimate_best(&cfg(Dataflow::WeightStationary), &p);
        let ws = estimate(&cfg(Dataflow::WeightStationary), &p);
        let is = estimate(&cfg(Dataflow::InputStationary), &p);
        assert_eq!(s.total_cycles(), ws.total_cycles().min(is.total_cycles()));
        assert!(matches!(df, Dataflow::WeightStationary | Dataflow::InputStationary));
    }

    #[test]
    fn nlr_pays_double_bandwidth() {
        let p = GemmProblem::dense(GemmShape::new(16, 16, 16));
        let s = estimate(&cfg(Dataflow::NoLocalReuse), &p);
        assert_eq!(s.loading_cycles, 0);
        assert_eq!(s.useful_macs, s.issued_macs);
        // 4096 pairs * 2 operands / 16 words per cycle.
        assert_eq!(s.streaming_cycles, 512);
    }

    #[test]
    fn zero_density_yields_empty_stats() {
        let p = GemmProblem::sparse(GemmShape::new(16, 16, 16), 0.0, 1.0);
        let s = estimate(&cfg(Dataflow::InputStationary), &p);
        assert_eq!(s.total_cycles(), 0);
        assert_eq!(s.folds, 0);
        let n = estimate(&cfg(Dataflow::NoLocalReuse), &p);
        assert_eq!(n.total_cycles(), 0);
    }

    #[test]
    fn big_irregular_gemm_is_cheap_to_estimate() {
        // The paper's 1024-16-500000 monster runs instantly here.
        let p = GemmProblem::sparse(GemmShape::new(1024, 16, 500_000), 0.2, 0.5);
        let cfg = SigmaConfig::paper();
        let s = estimate(&cfg, &p);
        assert!(s.total_cycles() > 0);
        assert!(s.folds > 1);
        assert_eq!(s.stationary_utilization(), 1.0);
    }

    #[test]
    fn contraction_major_estimate_tracks_functional() {
        use crate::controller::PackingOrder;
        use crate::engine::SigmaSim;
        use sigma_matrix::gen::{sparse_uniform, Density};
        let cfg = SigmaConfig::new(2, 16, 4, Dataflow::InputStationary)
            .unwrap()
            .with_packing_order(PackingOrder::ContractionMajor);
        let a = sparse_uniform(64, 16, Density::DENSE, 71);
        let b = sparse_uniform(16, 12, Density::DENSE, 72);
        let run = SigmaSim::new(cfg).unwrap().run_gemm(&a, &b).unwrap();
        let est = estimate(&cfg, &GemmProblem::dense(GemmShape::new(64, 12, 16)));
        let f = run.stats.total_cycles() as f64;
        let e = est.total_cycles() as f64;
        assert!((f - e).abs() / f < 0.2, "functional {f} vs analytic {e}");
        // And the CM estimate streams less than the GM estimate at this
        // narrow bandwidth.
        let gm = estimate(
            &cfg.with_packing_order(PackingOrder::GroupMajor),
            &GemmProblem::dense(GemmShape::new(64, 12, 16)),
        );
        assert!(est.streaming_cycles < gm.streaming_cycles);
    }

    #[test]
    #[should_panic(expected = "density_a out of range")]
    fn sparse_validates_density() {
        let _ = GemmProblem::sparse(GemmShape::new(2, 2, 2), 1.5, 0.5);
    }
}
