//! The SIGMA accelerator simulator: Flex-DPE, Flex-DPU, sparsity
//! controller and cycle-level GEMM execution.
//!
//! This crate implements the paper's primary contribution (Sec. IV of
//! [Qin et al., HPCA 2020]): a GEMM engine built from **Flexible Dot
//! Product Engines** — 1-D arrays of multipliers fed by a non-blocking
//! Benes distribution network and drained by the FAN reduction tree —
//! grouped dynamically into **Flexible Dot Product Units** over a simple
//! mesh NoC.
//!
//! The simulator has two complementary paths:
//!
//! * [`SigmaSim::run_gemm`] — a *functional* cycle-level execution: real
//!   `f32` operands move through the modeled controller → distribution →
//!   multipliers → FAN pipeline, producing both the numeric product
//!   (verified against the reference GEMM) and exact [`CycleStats`].
//! * [`model::estimate`] — an analytic model producing the same
//!   [`CycleStats`] from shapes and densities alone, used for the paper's
//!   enormous evaluation GEMMs (dimensions up to 500 000) where functional
//!   simulation is unnecessary. The two paths are cross-validated against
//!   each other in the test suite.
//!
//! The latency decomposition follows the paper's Table II exactly:
//! loading latency (stationary fill, not overlapped), streaming latency
//! (pipelined distribution + multiply + reduce), and add latency (the
//! final FAN drain before the next fold).
//!
//! # Quick example
//!
//! ```
//! use sigma_core::{Dataflow, SigmaConfig, SigmaSim};
//! use sigma_matrix::gen::{sparse_uniform, Density};
//!
//! let cfg = SigmaConfig::new(4, 16, 16, Dataflow::WeightStationary)?;
//! let sim = SigmaSim::new(cfg)?;
//! let a = sparse_uniform(12, 20, Density::new(0.5).unwrap(), 1);
//! let b = sparse_uniform(20, 9, Density::from_sparsity(0.8).unwrap(), 2);
//! let run = sim.run_gemm(&a, &b)?;
//! let reference = a.to_dense().matmul(&b.to_dense());
//! assert!(run.result.approx_eq(&reference, 1e-3));
//! assert!(run.stats.stationary_utilization() > 0.99); // only non-zeros mapped
//! # Ok::<(), sigma_core::SigmaError>(())
//! ```
//!
//! [Qin et al., HPCA 2020]: https://doi.org/10.1109/HPCA47549.2020.00015

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    warn(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cancel;
pub mod config;
pub mod controller;
pub mod dpu;
pub mod engine;
pub mod engine_api;
pub mod fault;
pub mod flex_dpe;
pub mod model;
pub mod noc;
pub mod sched;
pub mod stats;
pub mod trace;

pub use cancel::CancelToken;
pub use config::{Dataflow, SigmaConfig, SigmaError};
pub use controller::{ControllerPlan, Fold, MappedElement, PackingOrder};
pub use dpu::{DpuAllocation, DpuAllocator, PartitionPolicy};
pub use engine::{GemmRun, RecoveryPolicy, SigmaSim};
pub use engine_api::{validate_finite, Engine, EngineError, EngineRun};
pub use fault::{
    FaultCounters, FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultReport, FaultSite,
    FiredFault,
};
pub use flex_dpe::{DpeStep, FlexDpe};
pub use noc::{MeshNoc, NocStats};
pub use sched::{Event, EventQueue};
pub use sigma_telemetry::{
    validate_chrome_trace, ChromeTrace, Counter, Hist, HistSummary, Telemetry, TelemetrySnapshot,
    TraceSummary,
};
pub use stats::CycleStats;
pub use trace::{Phase, Trace, TraceEvent};
