//! Deterministic fault injection for the SIGMA datapath model.
//!
//! DNN training runs for days on thousands of accelerators, so SIGMA-class
//! hardware must assume datapath upsets *will* happen. This module models
//! them: a [`FaultPlan`] names faults by physical site ([`FaultSite`]) and
//! behaviour ([`FaultKind`]), and a [`FaultInjector`] arms the plan for
//! one run, perturbing values exactly where the real defect would — the
//! multiplier output latch, a FAN adder, a Benes output port, or a word of
//! the sparsity controller's bitmap SRAM.
//!
//! Everything is deterministic: the same plan over the same operands fires
//! the same faults at the same cycles, and an empty plan leaves the
//! simulation byte-identical to an un-instrumented run (asserted by
//! property tests in `sigma-bench`). Detection and recovery live in
//! [`SigmaSim::run_gemm_checked`](crate::SigmaSim::run_gemm_checked),
//! which pairs the injector with the ABFT checksums of `sigma_matrix::abft`.

use sigma_interconnect::{flip_bit, force_bit};
pub use sigma_interconnect::{AdderFault, StuckLevel};

/// A physical location in the modeled datapath where a fault can live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The output latch of one multiplier (`slot`) in one Flex-DPE.
    MultiplierOutput {
        /// Index of the Flex-DPE (0-based, in fold activation order).
        dpe: usize,
        /// Multiplier slot within the DPE.
        slot: usize,
    },
    /// One adder node of a Flex-DPE's FAN reduction tree.
    FanAdder {
        /// Index of the Flex-DPE.
        dpe: usize,
        /// Adder id in the FAN's 1..size numbering.
        adder: usize,
    },
    /// One output port of a Flex-DPE's Benes distribution network (the
    /// streamed operand delivered to that multiplier slot).
    BenesPort {
        /// Index of the Flex-DPE.
        dpe: usize,
        /// Output port / multiplier slot.
        port: usize,
    },
    /// One `u64` word of the streaming operand's bitmap metadata in the
    /// sparsity controller's SRAM.
    BitmapWord {
        /// Storage word index.
        word: usize,
    },
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSite::MultiplierOutput { dpe, slot } => write!(f, "mult[{dpe}.{slot}]"),
            FaultSite::FanAdder { dpe, adder } => write!(f, "fan-adder[{dpe}.{adder}]"),
            FaultSite::BenesPort { dpe, port } => write!(f, "benes-port[{dpe}.{port}]"),
            FaultSite::BitmapWord { word } => write!(f, "bitmap-word[{word}]"),
        }
    }
}

/// How a fault perturbs the value at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient single-event upset: XORs one bit of the value the
    /// *first* time the site is exercised, then disappears. Meaningful on
    /// [`FaultSite::MultiplierOutput`] and [`FaultSite::BenesPort`].
    TransientFlip {
        /// IEEE-754 bit position to flip (0 = LSB of mantissa, 31 = sign).
        bit: u32,
    },
    /// A persistent stuck-at defect: forces one bit of the value every
    /// time the site is exercised. Meaningful on
    /// [`FaultSite::MultiplierOutput`] and [`FaultSite::FanAdder`].
    StuckBit {
        /// IEEE-754 bit position.
        bit: u32,
        /// The level the bit is stuck at.
        level: StuckLevel,
    },
    /// The Benes port never delivers: the multiplier sees 0.0 every cycle.
    /// Meaningful on [`FaultSite::BenesPort`].
    DroppedPort,
    /// A wrong switch state: the port persistently receives the operand
    /// destined for port `from` instead of its own.
    /// Meaningful on [`FaultSite::BenesPort`].
    MisroutedPort {
        /// The port whose operand is (incorrectly) delivered here.
        from: usize,
    },
    /// XORs `mask` into the bitmap storage word once, before the
    /// controller builds its mapping. Meaningful on
    /// [`FaultSite::BitmapWord`].
    CorruptWord {
        /// Bits to flip in the `u64` word.
        mask: u64,
    },
}

impl FaultKind {
    /// `true` for one-shot faults that disappear after firing once.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, FaultKind::TransientFlip { .. } | FaultKind::CorruptWord { .. })
    }
}

/// One planned fault: a site plus a behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Where the fault lives.
    pub site: FaultSite,
    /// What it does to the value there.
    pub kind: FaultKind,
}

/// A deterministic set of faults to arm for a run.
///
/// The default (and [`FaultPlan::none`]) is empty: running with an empty
/// plan is byte-identical to running without instrumentation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (injects nothing).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with exactly one fault.
    #[must_use]
    pub fn single(site: FaultSite, kind: FaultKind) -> Self {
        Self { events: vec![FaultEvent { site, kind }] }
    }

    /// Adds another fault (builder style).
    #[must_use]
    pub fn with_event(mut self, site: FaultSite, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { site, kind });
        self
    }

    /// The planned events.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` when nothing is planned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of planned events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Canonical string naming every planned fault, in plan order. An
    /// empty plan renders as `f1;` — byte-identical runs demand
    /// byte-identical plans, so result caches fold this into the cell
    /// key. The leading `f1` is the key's own layout revision.
    #[must_use]
    pub fn canonical_key(&self) -> String {
        use std::fmt::Write as _;
        let mut key = String::from("f1;");
        for event in &self.events {
            let _ = write!(key, "{}:", event.site);
            match event.kind {
                FaultKind::TransientFlip { bit } => {
                    let _ = write!(key, "flip[{bit}]");
                }
                FaultKind::StuckBit { bit, level } => {
                    let level = match level {
                        StuckLevel::Zero => 0,
                        StuckLevel::One => 1,
                    };
                    let _ = write!(key, "stuck[{bit}={level}]");
                }
                FaultKind::DroppedPort => key.push_str("dropped"),
                FaultKind::MisroutedPort { from } => {
                    let _ = write!(key, "misrouted[{from}]");
                }
                FaultKind::CorruptWord { mask } => {
                    let _ = write!(key, "corrupt[{mask:016x}]");
                }
            }
            key.push(';');
        }
        key
    }
}

/// A fault that actually fired during a run, stamped with where and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiredFault {
    /// Total-cycle timestamp at which the fault first perturbed a value.
    pub cycle: u64,
    /// The site it fired at.
    pub site: FaultSite,
    /// The behaviour that fired.
    pub kind: FaultKind,
}

/// Per-run fault accounting, mirrored into
/// [`CycleStats`](crate::CycleStats) by the checked-run entry points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Fault events that fired (perturbed at least one value).
    pub injected: u64,
    /// ABFT detections (one per checksum pass that flagged the result).
    pub detected: u64,
    /// Successful remediations (in-place correction or recompute) with
    /// the result verified clean afterwards.
    pub corrected: u64,
    /// Runs whose final result is wrong: undetected by the checksums or
    /// uncorrectable within the recompute budget.
    pub escaped: u64,
}

/// What happened, fault-wise, during one (possibly recomputed) run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Every fault that fired, with cycle and site.
    pub fired: Vec<FiredFault>,
    /// The injected/detected/corrected/escaped tally.
    pub counters: FaultCounters,
    /// Number of full datapath executions (1 = no recompute needed).
    pub attempts: u32,
    /// `true` when the first attempt's result differed from the
    /// fault-free result by more than the verification tolerance — i.e.
    /// the fault had a *numeric* effect rather than being masked.
    pub numeric_effect: bool,
}

/// Arms a [`FaultPlan`] for one run and applies it site by site.
///
/// The engine threads an `Option<&mut FaultInjector>` through its
/// datapath; `None` (the default) costs nothing and changes nothing.
/// Transient events are consumed on first firing and stay consumed across
/// ABFT recomputes — a single-event upset does not recur — while stuck-at
/// and misroute defects keep applying on every attempt.
#[derive(Debug)]
pub struct FaultInjector<'a> {
    plan: &'a FaultPlan,
    /// One-shot events already consumed (index-parallel with the plan).
    consumed: Vec<bool>,
    /// Events whose first firing has been recorded (persistent faults
    /// keep applying but are only recorded once).
    recorded: Vec<bool>,
    fired: Vec<FiredFault>,
}

impl<'a> FaultInjector<'a> {
    /// Arms `plan` for one run.
    #[must_use]
    pub fn new(plan: &'a FaultPlan) -> Self {
        let n = plan.events.len();
        Self { plan, consumed: vec![false; n], recorded: vec![false; n], fired: Vec::new() }
    }

    /// `true` when the plan is empty (nothing will ever fire).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// The faults that have fired so far.
    #[must_use]
    pub fn fired(&self) -> &[FiredFault] {
        &self.fired
    }

    fn record(&mut self, idx: usize, cycle: u64) {
        if !self.recorded[idx] {
            self.recorded[idx] = true;
            let e = self.plan.events[idx];
            self.fired.push(FiredFault { cycle, site: e.site, kind: e.kind });
        }
    }

    /// Drains the pending bitmap-word corruptions (one-shot), recording
    /// them as fired. Returns `(word, mask)` pairs.
    pub fn take_bitmap_corruptions(&mut self, cycle: u64) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        for idx in 0..self.plan.events.len() {
            let e = self.plan.events[idx];
            if self.consumed[idx] {
                continue;
            }
            if let (FaultSite::BitmapWord { word }, FaultKind::CorruptWord { mask }) =
                (e.site, e.kind)
            {
                self.consumed[idx] = true;
                self.record(idx, cycle);
                out.push((word, mask));
            }
        }
        out
    }

    /// The stuck-at defects armed on `dpe`'s FAN adders, recorded as
    /// fired the first time that DPE reduces with them armed.
    pub fn adder_faults(&mut self, dpe: usize, cycle: u64) -> Vec<AdderFault> {
        let mut out = Vec::new();
        for idx in 0..self.plan.events.len() {
            let e = self.plan.events[idx];
            if let (FaultSite::FanAdder { dpe: d, adder }, FaultKind::StuckBit { bit, level }) =
                (e.site, e.kind)
            {
                if d == dpe {
                    self.record(idx, cycle);
                    out.push(AdderFault { adder, bit, level });
                }
            }
        }
        out
    }

    /// Applies Benes delivery faults to the operands arriving at `dpe`'s
    /// multiplier slots. `occupied[slot]` marks slots with a stationary
    /// element — faults only fire where a delivery actually happens.
    pub fn apply_port_faults(
        &mut self,
        dpe: usize,
        delivered: &mut [f32],
        occupied: &[bool],
        cycle: u64,
    ) {
        let original = delivered.to_vec();
        for idx in 0..self.plan.events.len() {
            let e = self.plan.events[idx];
            let FaultSite::BenesPort { dpe: d, port } = e.site else { continue };
            if d != dpe || port >= delivered.len() || !occupied[port] {
                continue;
            }
            match e.kind {
                FaultKind::DroppedPort => {
                    delivered[port] = 0.0;
                    self.record(idx, cycle);
                }
                FaultKind::MisroutedPort { from } => {
                    delivered[port] = original.get(from).copied().unwrap_or(0.0);
                    self.record(idx, cycle);
                }
                FaultKind::TransientFlip { bit } if !self.consumed[idx] => {
                    self.consumed[idx] = true;
                    delivered[port] = flip_bit(delivered[port], bit);
                    self.record(idx, cycle);
                }
                _ => {}
            }
        }
    }

    /// Applies multiplier-output faults to the product computed at
    /// `(dpe, slot)`, returning the (possibly corrupted) value.
    #[must_use]
    pub fn apply_multiplier(&mut self, dpe: usize, slot: usize, product: f32, cycle: u64) -> f32 {
        let mut v = product;
        for idx in 0..self.plan.events.len() {
            let e = self.plan.events[idx];
            let FaultSite::MultiplierOutput { dpe: d, slot: s } = e.site else { continue };
            if d != dpe || s != slot {
                continue;
            }
            match e.kind {
                FaultKind::TransientFlip { bit } if !self.consumed[idx] => {
                    self.consumed[idx] = true;
                    v = flip_bit(v, bit);
                    self.record(idx, cycle);
                }
                FaultKind::StuckBit { bit, level } => {
                    v = force_bit(v, bit, level);
                    self.record(idx, cycle);
                }
                _ => {}
            }
        }
        v
    }

    /// Consumes the injector into a report (counters hold only the
    /// injected tally; detection/correction is filled in by the checked
    /// run entry points).
    #[must_use]
    pub fn into_report(self) -> FaultReport {
        let injected = self.fired.len() as u64;
        FaultReport {
            fired: self.fired,
            counters: FaultCounters { injected, ..FaultCounters::default() },
            attempts: 1,
            numeric_effect: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::none();
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.is_empty());
        let mut delivered = [1.0f32, 2.0];
        inj.apply_port_faults(0, &mut delivered, &[true, true], 0);
        assert_eq!(delivered, [1.0, 2.0]);
        assert_eq!(inj.apply_multiplier(0, 0, 3.5, 0), 3.5);
        assert!(inj.adder_faults(0, 0).is_empty());
        assert!(inj.take_bitmap_corruptions(0).is_empty());
        assert!(inj.into_report().fired.is_empty());
    }

    #[test]
    fn transient_flip_fires_exactly_once() {
        let plan = FaultPlan::single(
            FaultSite::MultiplierOutput { dpe: 1, slot: 3 },
            FaultKind::TransientFlip { bit: 31 },
        );
        let mut inj = FaultInjector::new(&plan);
        // Wrong site: untouched.
        assert_eq!(inj.apply_multiplier(1, 2, 4.0, 10), 4.0);
        // First hit on the site: sign flip.
        assert_eq!(inj.apply_multiplier(1, 3, 4.0, 11), -4.0);
        // Second hit: the transient is gone.
        assert_eq!(inj.apply_multiplier(1, 3, 4.0, 12), 4.0);
        let report = inj.into_report();
        assert_eq!(report.fired.len(), 1);
        assert_eq!(report.fired[0].cycle, 11);
        assert_eq!(report.counters.injected, 1);
    }

    #[test]
    fn stuck_bit_is_persistent_but_recorded_once() {
        let plan = FaultPlan::single(
            FaultSite::MultiplierOutput { dpe: 0, slot: 0 },
            FaultKind::StuckBit { bit: 31, level: StuckLevel::One },
        );
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.apply_multiplier(0, 0, 2.0, 5), -2.0);
        assert_eq!(inj.apply_multiplier(0, 0, 2.0, 6), -2.0);
        assert_eq!(inj.fired().len(), 1);
        assert_eq!(inj.fired()[0].cycle, 5);
    }

    #[test]
    fn port_faults_drop_misroute_and_flip() {
        let plan =
            FaultPlan::single(FaultSite::BenesPort { dpe: 0, port: 0 }, FaultKind::DroppedPort)
                .with_event(
                    FaultSite::BenesPort { dpe: 0, port: 1 },
                    FaultKind::MisroutedPort { from: 2 },
                )
                .with_event(
                    FaultSite::BenesPort { dpe: 0, port: 2 },
                    FaultKind::TransientFlip { bit: 31 },
                );
        let mut inj = FaultInjector::new(&plan);
        let mut d = [10.0f32, 20.0, 30.0];
        inj.apply_port_faults(0, &mut d, &[true, true, true], 7);
        // Drop, misroute (pre-fault value of port 2), sign-flip.
        assert_eq!(d, [0.0, 30.0, -30.0]);
        // Persistent faults keep applying; the transient is spent.
        let mut d2 = [10.0f32, 20.0, 30.0];
        inj.apply_port_faults(0, &mut d2, &[true, true, true], 8);
        assert_eq!(d2, [0.0, 30.0, 30.0]);
        // Unoccupied slots never fire.
        let mut d3 = [1.0f32, 1.0, 1.0];
        inj.apply_port_faults(0, &mut d3, &[false, false, false], 9);
        assert_eq!(d3, [1.0, 1.0, 1.0]);
        assert_eq!(inj.fired().len(), 3);
    }

    #[test]
    fn bitmap_corruptions_drain_once() {
        let plan = FaultPlan::single(
            FaultSite::BitmapWord { word: 2 },
            FaultKind::CorruptWord { mask: 0b1010 },
        );
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.take_bitmap_corruptions(0), vec![(2, 0b1010)]);
        assert!(inj.take_bitmap_corruptions(0).is_empty());
    }

    #[test]
    fn adder_faults_filter_by_dpe() {
        let plan = FaultPlan::single(
            FaultSite::FanAdder { dpe: 3, adder: 5 },
            FaultKind::StuckBit { bit: 30, level: StuckLevel::Zero },
        );
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.adder_faults(0, 0).is_empty());
        let f = inj.adder_faults(3, 4);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].adder, 5);
        assert_eq!(inj.fired().len(), 1);
    }

    #[test]
    fn sites_and_kinds_classify_and_display() {
        assert!(FaultKind::TransientFlip { bit: 4 }.is_transient());
        assert!(FaultKind::CorruptWord { mask: 1 }.is_transient());
        assert!(!FaultKind::DroppedPort.is_transient());
        assert!(!FaultKind::StuckBit { bit: 0, level: StuckLevel::One }.is_transient());
        assert_eq!(FaultSite::MultiplierOutput { dpe: 1, slot: 2 }.to_string(), "mult[1.2]");
        assert_eq!(FaultSite::BitmapWord { word: 7 }.to_string(), "bitmap-word[7]");
    }

    #[test]
    fn plan_builders_compose() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        let p = p.with_event(FaultSite::BitmapWord { word: 0 }, FaultKind::CorruptWord { mask: 1 });
        assert_eq!(p.len(), 1);
        assert_eq!(p.events()[0].site, FaultSite::BitmapWord { word: 0 });
    }

    #[test]
    fn plan_canonical_key_renders_every_kind() {
        assert_eq!(FaultPlan::none().canonical_key(), "f1;");
        let plan = FaultPlan::single(
            FaultSite::MultiplierOutput { dpe: 1, slot: 2 },
            FaultKind::TransientFlip { bit: 30 },
        )
        .with_event(
            FaultSite::FanAdder { dpe: 0, adder: 3 },
            FaultKind::StuckBit { bit: 22, level: StuckLevel::One },
        )
        .with_event(FaultSite::BenesPort { dpe: 2, port: 5 }, FaultKind::DroppedPort)
        .with_event(FaultSite::BenesPort { dpe: 2, port: 6 }, FaultKind::MisroutedPort { from: 1 })
        .with_event(FaultSite::BitmapWord { word: 4 }, FaultKind::CorruptWord { mask: 0xff });
        assert_eq!(
            plan.canonical_key(),
            "f1;mult[1.2]:flip[30];fan-adder[0.3]:stuck[22=1];benes-port[2.5]:dropped;\
             benes-port[2.6]:misrouted[1];bitmap-word[4]:corrupt[00000000000000ff];"
        );
        // Order matters: the same events in a different order are a
        // different plan (faults interact), so keys must differ too.
        let swapped = FaultPlan::single(
            FaultSite::FanAdder { dpe: 0, adder: 3 },
            FaultKind::StuckBit { bit: 22, level: StuckLevel::One },
        )
        .with_event(
            FaultSite::MultiplierOutput { dpe: 1, slot: 2 },
            FaultKind::TransientFlip { bit: 30 },
        );
        assert_ne!(
            plan.canonical_key()[..40],
            swapped.canonical_key()[..40],
            "event order is part of the key"
        );
    }
}
