//! Cooperative cancellation for long-running engine work.
//!
//! Rust has no safe preemptive thread cancellation, so the harness's
//! per-cell watchdogs historically abandoned a timed-out cell's thread
//! and let it simulate to completion — holding both operand matrices the
//! whole time. A [`CancelToken`] closes that gap cooperatively: the
//! watchdog sets the flag, and the simulator polls it at **fold
//! boundaries** (the natural quiescent points of the Table-II execution
//! model, where no stationary state is in flight) and returns
//! [`SigmaError::Cancelled`](crate::SigmaError::Cancelled) instead of
//! starting the next fold.
//!
//! The token is deliberately tiny — a shared atomic flag — so checking it
//! once per fold is free compared to a fold's worth of streaming work,
//! and an un-cancelled run is byte-identical to one executed without a
//! token.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag: cloned into a worker, set by a watchdog.
///
/// Cloning is cheap (an `Arc` bump) and all clones observe the same
/// flag. Once cancelled, a token stays cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; observers see it on their next poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        t.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled(), "clones share the flag");
        t.cancel();
        assert!(t.is_cancelled(), "cancel is idempotent");
    }

    #[test]
    fn token_is_visible_across_threads() {
        let t = CancelToken::new();
        let observer = t.clone();
        let handle = std::thread::spawn(move || {
            while !observer.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        t.cancel();
        assert!(handle.join().unwrap());
    }
}
