//! Deterministic event queue for the epoch-driven simulation core.
//!
//! The lockstep tick loop pays one iteration per streaming cycle per
//! Flex-DPE even when nothing interesting happens. The event scheduler
//! instead lets each actor (the stationary loader, the streaming
//! front-end, and the FAN drain) register its *next interesting cycle*,
//! and the engine jumps the cycle cursor straight there, batching all
//! word-level occupancy/statistics updates for the skipped stretch.
//!
//! Determinism (sigma-lint D1) is by construction:
//!
//! * Events are keyed `(cycle, seq)` in a [`BTreeMap`], so pops are
//!   totally ordered — first by cycle, then by insertion sequence. Two
//!   events scheduled for the same cycle fire in the order they were
//!   pushed, independent of hash state or allocation addresses.
//! * `seq` is a monotone counter owned by the queue; no wall-clock time,
//!   no randomness, no pointer identity ever enters the ordering.
//!
//! The engine's handlers therefore produce an identical event history —
//! and identical statistics, traces, and outputs — on every run, which is
//! what lets `perf_bench --lockstep-check` assert bitwise equality
//! against the legacy tick loop.

use std::collections::BTreeMap;

/// What the engine should do when the cycle cursor reaches an event.
///
/// The per-fold protocol is a three-stage chain: `LoadFold(f)` charges
/// the (visible) stationary load and schedules `Stream(f)`; `Stream(f)`
/// batches the whole streaming phase — live steps compute, dead runs
/// fast-forward — and schedules `Drain(f)`; `Drain(f)` charges the final
/// FAN drain (the fold's `latency_until_quiescent`) and schedules
/// `LoadFold(f + 1)` if another fold remains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Load stationary fold `.0` into the Flex-DPEs.
    LoadFold(usize),
    /// Stream the moving matrix through fold `.0`.
    Stream(usize),
    /// Drain the last reduction wave of fold `.0`.
    Drain(usize),
}

/// A deterministic time-ordered event queue keyed by simulation cycle.
///
/// See the module docs for the determinism argument. The queue is
/// intentionally minimal: the engine is the only producer and consumer,
/// and events carry indices (not closures) so the whole schedule is
/// inspectable and `Debug`-printable.
#[derive(Debug, Default)]
pub struct EventQueue {
    events: BTreeMap<(u64, u64), Event>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute `cycle`. Events at the same cycle
    /// fire in push order.
    pub fn push(&mut self, cycle: u64, event: Event) {
        self.events.insert((cycle, self.seq), event);
        self.seq += 1;
    }

    /// Pops the earliest event, returning `(cycle, event)`; `None` when
    /// the schedule has quiesced.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        let key = *self.events.keys().next()?;
        let event = self.events.remove(&key)?;
        Some((key.0, event))
    }

    /// The cycle of the earliest pending event, if any.
    #[must_use]
    pub fn peek_cycle(&self) -> Option<u64> {
        self.events.keys().next().map(|&(cycle, _)| cycle)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_order() {
        let mut q = EventQueue::new();
        q.push(10, Event::Stream(0));
        q.push(3, Event::LoadFold(0));
        q.push(7, Event::Drain(0));
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_cycle(), Some(3));
        assert_eq!(q.pop(), Some((3, Event::LoadFold(0))));
        assert_eq!(q.pop(), Some((7, Event::Drain(0))));
        assert_eq!(q.pop(), Some((10, Event::Stream(0))));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn same_cycle_ties_break_by_push_order() {
        let mut q = EventQueue::new();
        q.push(5, Event::Drain(1));
        q.push(5, Event::LoadFold(2));
        q.push(5, Event::Stream(3));
        assert_eq!(q.pop(), Some((5, Event::Drain(1))));
        assert_eq!(q.pop(), Some((5, Event::LoadFold(2))));
        assert_eq!(q.pop(), Some((5, Event::Stream(3))));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(4, Event::LoadFold(0));
        assert_eq!(q.pop(), Some((4, Event::LoadFold(0))));
        // A later push at an earlier cycle still pops first.
        q.push(9, Event::Drain(0));
        q.push(6, Event::Stream(0));
        assert_eq!(q.pop(), Some((6, Event::Stream(0))));
        assert_eq!(q.pop(), Some((9, Event::Drain(0))));
    }
}
