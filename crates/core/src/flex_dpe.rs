//! The Flexible Dot Product Engine (Sec. IV-A) as an explicit
//! microarchitectural unit: `k` multipliers with stationary-value
//! buffers, a Benes distribution network, and a FAN reduction tree.
//!
//! [`FlexDpe`] executes one Flex-DPE's share of a fold: load stationary
//! values into multiplier buffers (Fig. 5 Step iv), then accept one
//! streamed vector per cycle, multiply, and reduce the products through
//! FAN per the cluster (`vecID`) assignment. The engine composes many of
//! these into the full SIGMA array; the unit is also usable standalone,
//! as in `examples/walkthrough_fig5.rs`.
//!
//! ## Hot-loop design
//!
//! The stationary store is *flattened* — dense `values`/`contractions`
//! arrays plus a `u64` occupancy bitmask instead of `Vec<Option<..>>` —
//! and the unit owns its scratch state (product buffer,
//! [`FanScratch`], [`RouteCache`], request buffer), so the steady-state
//! streaming path ([`FlexDpe::step_into`]) performs **zero heap
//! allocations** and the per-fold loading unicast is routed once and
//! memoized. The allocating [`FlexDpe::step`] remains as a convenience
//! wrapper with identical results.

use crate::config::SigmaError;
use crate::controller::MappedElement;
use sigma_interconnect::{BenesNetwork, Fan, FanProgram, FanReduction, FanScratch, RouteCache};
use sigma_telemetry::{Counter, Hist, Telemetry};

/// The result of streaming one vector through a Flex-DPE.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DpeStep {
    /// Per-cluster sums out of the FAN.
    pub reduction: FanReduction,
    /// Multiplications whose streamed operand was non-zero.
    pub useful_macs: usize,
    /// Distinct streamed values this DPE consumed (for SRAM accounting).
    pub operands_consumed: usize,
}

/// One k-multiplier Flexible Dot Product Engine.
#[derive(Debug, Clone)]
pub struct FlexDpe {
    size: usize,
    benes: BenesNetwork,
    fan: Fan,
    /// Stationary values, slot-indexed (0.0 in unoccupied slots).
    values: Vec<f32>,
    /// Contraction index per slot (meaningful only where occupied).
    contractions: Vec<usize>,
    /// Occupancy bitmask, one bit per multiplier slot.
    occupied_words: Vec<u64>,
    vec_ids: Vec<Option<u32>>,
    occupied_count: usize,
    /// Distinct contraction indices among the loaded elements, computed
    /// once at load time (it is invariant across steps).
    distinct_operands: usize,
    // Reusable hot-loop state.
    products: Vec<f32>,
    fan_scratch: FanScratch,
    /// The FAN add schedule compiled once per load: the schedule is a pure
    /// function of the `vecID` layout, so the event-driven engine replays
    /// it per streamed wave instead of re-deriving the reduction structure
    /// ([`FlexDpe::step_compiled`]).
    program: FanProgram,
    route_cache: RouteCache,
    load_req: Vec<Option<usize>>,
    /// Sorted-and-deduped to count distinct contractions at load time;
    /// a Vec (not a hash set) so the count is allocation-free after
    /// warmup and independent of any per-process hasher state.
    distinct_scratch: Vec<usize>,
    telemetry: Telemetry,
}

impl FlexDpe {
    /// Creates an engine with `size` multipliers.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::DpeSizeNotPowerOfTwo`] unless `size` is a
    /// power of two at least 2 (required by the Benes/FAN networks).
    pub fn new(size: usize) -> Result<Self, SigmaError> {
        let benes = BenesNetwork::new(size).map_err(|_| SigmaError::DpeSizeNotPowerOfTwo(size))?;
        let fan = Fan::new(size).map_err(|_| SigmaError::DpeSizeNotPowerOfTwo(size))?;
        Ok(Self {
            size,
            benes,
            fan,
            values: vec![0.0; size],
            contractions: vec![0; size],
            occupied_words: vec![0; size.div_ceil(64)],
            vec_ids: vec![None; size],
            occupied_count: 0,
            distinct_operands: 0,
            products: vec![0.0; size],
            fan_scratch: FanScratch::default(),
            program: FanProgram::default(),
            route_cache: RouteCache::new(),
            load_req: Vec::with_capacity(size),
            distinct_scratch: Vec::with_capacity(size),
            telemetry: Telemetry::off(),
        })
    }

    /// Number of multipliers.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Occupied multiplier buffers.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.occupied_count
    }

    /// The FAN cluster ids currently configured.
    #[must_use]
    pub fn vec_ids(&self) -> &[Option<u32>] {
        &self.vec_ids
    }

    /// Turns Benes route memoization on or off (on by default). Disabled,
    /// every load/stream request is routed cold — the differential-testing
    /// mode the cached-vs-cold equivalence tests drive.
    pub fn set_route_caching(&mut self, enabled: bool) {
        self.route_cache.set_enabled(enabled);
    }

    /// The unit's route cache (hit/miss observability).
    #[must_use]
    pub fn route_cache(&self) -> &RouteCache {
        &self.route_cache
    }

    /// Attaches a telemetry handle (share one across units to aggregate).
    /// A disabled handle — the default — makes every recording site an
    /// inlined no-op, keeping the hot loops allocation-free and branch-
    /// cheap; recording through an enabled handle is atomic adds only, so
    /// the loops stay allocation-free either way.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    #[inline]
    fn slot_occupied(&self, slot: usize) -> bool {
        (self.occupied_words[slot / 64] >> (slot % 64)) & 1 == 1
    }

    /// Loads stationary elements into the first `elements.len()`
    /// multiplier buffers, with their FAN cluster assignment. The
    /// loading unicast is routed through the (memoized) Benes model and
    /// validated against real switch states the first time each prefix
    /// pattern is seen (value `i` arriving on port `i` must route to
    /// multiplier `i`); cache hits reuse the already-validated
    /// configuration, making steady-state loads allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::DpeSizeNotPowerOfTwo`] if more elements than
    /// multipliers are supplied (size abuse), or propagates nothing else:
    /// the identity loading pattern always routes.
    ///
    /// # Panics
    ///
    /// Panics if `elements.len() != vec_ids-prefix` invariants are
    /// violated (`vec_ids.len() != size`).
    pub fn load(
        &mut self,
        elements: &[MappedElement],
        vec_ids: &[Option<u32>],
    ) -> Result<(), SigmaError> {
        if elements.len() > self.size {
            return Err(SigmaError::DpeSizeNotPowerOfTwo(elements.len()));
        }
        assert_eq!(vec_ids.len(), self.size, "vec_ids must cover every multiplier");
        // Route the loading unicast (identity prefix) through the cache.
        self.load_req.clear();
        self.load_req.extend((0..self.size).map(|i| (i < elements.len()).then_some(i)));
        let (cfg, cold) = self
            .route_cache
            .route_monotone_multicast_tracked(&self.benes, &self.load_req)
            .map_err(|e| {
                SigmaError::Internal(format!("identity loading pattern failed to route: {e}"))
            })?;
        if cold && cfg!(debug_assertions) {
            // Validate freshly derived switch settings end-to-end (debug
            // builds only — the walk exists solely to feed the asserts);
            // hits reuse a configuration that already passed this check.
            let inputs: Vec<Option<usize>> = (0..self.size).map(Some).collect();
            let delivered = cfg.apply(&inputs);
            for (i, d) in delivered.iter().enumerate().take(elements.len()) {
                debug_assert_eq!(*d, Some(i), "loading unicast misrouted");
            }
        }
        self.telemetry
            .add(if cold { Counter::RouteCacheMisses } else { Counter::RouteCacheHits }, 1);
        self.telemetry.add(Counter::BenesLoads, 1);
        if self.telemetry.is_enabled() {
            self.telemetry
                .observe(Hist::MultiplierOccupancyPct, (elements.len() * 100 / self.size) as u64);
        }

        // In-place refill of the flattened stationary store. The product
        // buffer is zeroed here (not per step) so `step_compiled` can rely
        // on unoccupied slots staying 0.0 across the whole fold.
        self.values.fill(0.0);
        self.products.fill(0.0);
        self.occupied_words.fill(0);
        self.distinct_scratch.clear();
        for (slot, e) in elements.iter().enumerate() {
            self.values[slot] = e.value;
            self.contractions[slot] = e.contraction;
            self.occupied_words[slot / 64] |= 1 << (slot % 64);
            self.distinct_scratch.push(e.contraction);
        }
        self.vec_ids.copy_from_slice(vec_ids);
        self.occupied_count = elements.len();
        self.distinct_scratch.sort_unstable();
        self.distinct_scratch.dedup();
        self.distinct_operands = self.distinct_scratch.len();
        // Compile the FAN add schedule for this vecID layout. Compilation
        // fails only for non-contiguous cluster layouts, which per-step
        // reduction would reject anyway; the program is simply marked
        // invalid and [`FlexDpe::step_compiled`] refuses to run.
        let _ = self.program.compile(&self.fan, &self.vec_ids);
        Ok(())
    }

    /// Clears the stationary buffers (fold retirement) in place — no
    /// reallocation.
    pub fn clear(&mut self) {
        self.values.fill(0.0);
        self.occupied_words.fill(0);
        self.vec_ids.fill(None);
        self.occupied_count = 0;
        self.distinct_operands = 0;
        // An all-idle layout compiles to the (valid) empty program.
        let _ = self.program.compile(&self.fan, &self.vec_ids);
    }

    /// Streams one vector through the engine: `operand(k)` supplies the
    /// streamed value for contraction index `k` (the Benes multicasts one
    /// SRAM read of each distinct `k` to every matching multiplier).
    ///
    /// Allocating convenience wrapper over the same datapath as
    /// [`FlexDpe::step_into`]; results are identical.
    ///
    /// # Errors
    ///
    /// Propagates FAN errors, which cannot occur for controller-produced
    /// cluster assignments (contiguous by construction).
    pub fn step(&self, operand: &dyn Fn(usize) -> f32) -> Result<DpeStep, SigmaError> {
        let mut products = vec![0.0f32; self.size];
        let mut useful = 0usize;
        self.fill_products(operand, &mut products, &mut useful);
        let reduction = self
            .fan
            .reduce(&products, &self.vec_ids)
            .map_err(|_| SigmaError::DpeSizeNotPowerOfTwo(self.size))?;
        Ok(DpeStep { reduction, useful_macs: useful, operands_consumed: self.distinct_operands })
    }

    /// Allocation-free [`FlexDpe::step`]: products land in the unit's own
    /// scratch buffer, the FAN reduces through reusable working state, and
    /// the wave's sums are written into `out` (cleared first). After one
    /// warmup step, repeated calls perform zero heap allocations.
    ///
    /// # Errors
    ///
    /// Same as [`FlexDpe::step`].
    pub fn step_into(
        &mut self,
        operand: &dyn Fn(usize) -> f32,
        out: &mut DpeStep,
    ) -> Result<(), SigmaError> {
        self.products.fill(0.0);
        let mut useful = 0usize;
        for (wi, &word) in self.occupied_words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let slot = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                let v = operand(self.contractions[slot]);
                if v != 0.0 {
                    useful += 1;
                }
                self.products[slot] = self.values[slot] * v;
            }
        }
        self.fan
            .reduce_into(
                &self.products,
                &self.vec_ids,
                &[],
                &mut self.fan_scratch,
                &mut out.reduction,
            )
            .map_err(|_| SigmaError::DpeSizeNotPowerOfTwo(self.size))?;
        out.useful_macs = useful;
        out.operands_consumed = self.distinct_operands;
        if self.telemetry.is_enabled() {
            self.telemetry.add(Counter::StreamSteps, 1);
            self.telemetry.add(Counter::UsefulMacs, useful as u64);
            self.telemetry.add(Counter::IssuedMacs, self.occupied_count as u64);
            let adds = out.reduction.adds_performed as u64;
            self.telemetry.add(Counter::FanAdds, adds);
            self.telemetry.add(Counter::FanClusterSums, out.reduction.sums.len() as u64);
            self.telemetry.observe(
                Hist::FanAdderOccupancyPct,
                adds * 100 / (self.fan.adder_count() as u64).max(1),
            );
            self.telemetry.observe(
                Hist::FanLinkOccupancyPct,
                out.reduction.sums.len() as u64 * 100
                    / (self.fan.forwarding_link_count() as u64).max(1),
            );
        }
        Ok(())
    }

    /// Allocation-free streaming step on the *compiled* FAN schedule: the
    /// streamed operands arrive as a dense contraction-indexed column
    /// slice and the reduction replays the add schedule compiled at
    /// [`FlexDpe::load`] time instead of re-deriving the tree structure
    /// per wave. Bitwise-identical results to [`FlexDpe::step_into`] —
    /// same products, same f32 association order — at a fraction of the
    /// cost; this is the event-driven engine's steady-state path.
    ///
    /// Records **no** per-step telemetry: the event scheduler batches the
    /// per-step counters per fold (they are constants of the layout), so
    /// recording here would double-count.
    ///
    /// # Errors
    ///
    /// [`SigmaError::Internal`] if no valid program is compiled (a
    /// non-contiguous layout was loaded, or nothing was loaded yet).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `column` does not cover every
    /// contraction index the loaded elements reference.
    pub fn step_compiled(&mut self, column: &[f32], out: &mut DpeStep) -> Result<(), SigmaError> {
        if !self.program.is_valid() {
            return Err(SigmaError::Internal(
                "step_compiled without a valid compiled FAN program".to_string(),
            ));
        }
        // No products.fill here: load() zeroes the buffer and this loop
        // rewrites every occupied slot, while the compiled program only
        // reads cluster leaves (all occupied) — unoccupied slots stay 0.0
        // across steps by construction.
        //
        // Occupancy is always a contiguous prefix (`load` packs elements
        // into slots `0..len`), so the product pass runs over plain
        // slices instead of walking the occupancy words bit by bit.
        let occ = self.occupied_count;
        debug_assert_eq!(
            self.occupied_words.iter().map(|w| w.count_ones() as usize).sum::<usize>(),
            occ,
            "occupancy words out of sync with occupied_count"
        );
        debug_assert!(occ == 0 || self.slot_occupied(occ - 1), "occupancy must be a prefix");
        let mut useful = 0usize;
        for ((p, &v), &c) in
            self.products[..occ].iter_mut().zip(&self.values[..occ]).zip(&self.contractions[..occ])
        {
            let x = column[c];
            useful += usize::from(x != 0.0);
            *p = v * x;
        }
        self.program.execute_into(&mut self.products, &mut out.reduction);
        out.useful_macs = useful;
        out.operands_consumed = self.distinct_operands;
        Ok(())
    }

    /// Cycles until the FAN is quiescent after the last streamed wave of
    /// the current load — the drain the engine charges once per fold.
    /// Zero when nothing is loaded (the empty program drains instantly).
    #[must_use]
    pub fn drain_cycles(&self) -> u64 {
        self.program.latency_until_quiescent()
    }

    /// Batch-records the per-step telemetry [`FlexDpe::step_into`] would
    /// have recorded over `steps` waves of the current layout. Every
    /// per-step quantity except useful MACs is a pure function of the
    /// loaded layout — `n` waves add `n×` the same counter deltas and
    /// observe the same histogram value `n` times — so the event-driven
    /// engine calls this once per fold and the resulting registry state
    /// is identical to `steps` individual recordings. Useful MACs are
    /// data-dependent; the engine accumulates those separately.
    pub fn record_steps_telemetry(&self, steps: u64) {
        if !self.telemetry.is_enabled() || steps == 0 {
            return;
        }
        self.telemetry.add(Counter::StreamSteps, steps);
        self.telemetry.add(Counter::IssuedMacs, self.occupied_count as u64 * steps);
        let adds = self.program.adds_performed() as u64;
        let outs = self.program.output_count() as u64;
        self.telemetry.add(Counter::FanAdds, adds * steps);
        self.telemetry.add(Counter::FanClusterSums, outs * steps);
        self.telemetry.observe_n(
            Hist::FanAdderOccupancyPct,
            adds * 100 / (self.fan.adder_count() as u64).max(1),
            steps,
        );
        self.telemetry.observe_n(
            Hist::FanLinkOccupancyPct,
            outs * 100 / (self.fan.forwarding_link_count() as u64).max(1),
            steps,
        );
    }

    /// Computes the product vector for one streamed wave (shared by the
    /// allocating step paths).
    fn fill_products(
        &self,
        operand: &dyn Fn(usize) -> f32,
        products: &mut [f32],
        useful: &mut usize,
    ) {
        for (wi, &word) in self.occupied_words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let slot = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                let v = operand(self.contractions[slot]);
                if v != 0.0 {
                    *useful += 1;
                }
                products[slot] = self.values[slot] * v;
            }
        }
    }

    /// [`FlexDpe::step`] with an armed [`FaultInjector`]: Benes delivery
    /// faults perturb the streamed operands, multiplier-output faults
    /// perturb the products, and stuck FAN adders corrupt the reduction.
    /// With an empty plan this is value-identical to [`FlexDpe::step`].
    ///
    /// `dpe_index` names this engine in the injector's site space and
    /// `cycle` stamps any fault that fires.
    ///
    /// # Errors
    ///
    /// Propagates FAN errors, as [`FlexDpe::step`] does.
    pub fn step_faulted(
        &self,
        operand: &dyn Fn(usize) -> f32,
        injector: &mut crate::fault::FaultInjector<'_>,
        dpe_index: usize,
        cycle: u64,
    ) -> Result<DpeStep, SigmaError> {
        let mut delivered = vec![0.0f32; self.size];
        let mut occupied = vec![false; self.size];
        for slot in 0..self.size {
            if self.slot_occupied(slot) {
                delivered[slot] = operand(self.contractions[slot]);
                occupied[slot] = true;
            }
        }
        injector.apply_port_faults(dpe_index, &mut delivered, &occupied, cycle);

        let mut products = vec![0.0f32; self.size];
        let mut useful = 0usize;
        for slot in 0..self.size {
            if occupied[slot] {
                let v = delivered[slot];
                if v != 0.0 {
                    useful += 1;
                }
                products[slot] =
                    injector.apply_multiplier(dpe_index, slot, self.values[slot] * v, cycle);
            }
        }
        let adder_faults = injector.adder_faults(dpe_index, cycle);
        let reduction = self
            .fan
            .reduce_with_faults(&products, &self.vec_ids, &adder_faults)
            .map_err(|_| SigmaError::DpeSizeNotPowerOfTwo(self.size))?;
        Ok(DpeStep { reduction, useful_macs: useful, operands_consumed: self.distinct_operands })
    }

    /// Latency components of this engine: (distribution, multiply,
    /// reduction-levels) in cycles — the paper's "1-cycle distribution,
    /// 1-cycle multiplication, 1-cycle per reduction level" pipeline.
    #[must_use]
    pub fn pipeline_depths(&self) -> (u64, u64, u64) {
        (self.benes.traversal_latency_cycles(), 1, self.fan.latency_cycles())
    }

    /// Streams one vector with the operands *routed through the real
    /// Benes network*: `arrivals` are the streamed values in SRAM arrival
    /// order, and `request[slot] = Some(rank)` says which arrival each
    /// multiplier needs (a [`crate::ControllerPlan::streaming_request`]).
    /// Functionally identical to [`FlexDpe::step`] — asserted in tests —
    /// but every operand word traverses routed switch states, and the
    /// returned pass count is the distribution serialization. The
    /// multi-pass routing is memoized per request pattern.
    ///
    /// # Errors
    ///
    /// Propagates routing errors for malformed requests (out-of-range
    /// ranks) and FAN errors (cannot occur for controller output).
    ///
    /// # Panics
    ///
    /// Panics if `request.len() != size`.
    pub fn step_routed(
        &mut self,
        arrivals: &[f32],
        request: &[Option<usize>],
    ) -> Result<(DpeStep, usize), SigmaError> {
        assert_eq!(request.len(), self.size, "request must cover every multiplier");
        let (routing, _) = self
            .route_cache
            .route_general_multicast_tracked(&self.benes, request)
            .map_err(|_| SigmaError::DpeSizeNotPowerOfTwo(self.size))?;
        let mut inputs: Vec<Option<f32>> = vec![None; self.size];
        for (i, v) in arrivals.iter().enumerate().take(self.size) {
            inputs[i] = Some(*v);
        }
        let delivered = routing.apply(&inputs);
        let pass_count = routing.pass_count();

        let mut products = vec![0.0f32; self.size];
        let mut useful = 0usize;
        for slot in 0..self.size {
            if self.slot_occupied(slot) {
                let v = delivered[slot].unwrap_or(0.0);
                if v != 0.0 {
                    useful += 1;
                }
                products[slot] = self.values[slot] * v;
            }
        }
        let reduction = self
            .fan
            .reduce(&products, &self.vec_ids)
            .map_err(|_| SigmaError::DpeSizeNotPowerOfTwo(self.size))?;
        let distinct = request.iter().flatten().collect::<std::collections::BTreeSet<_>>().len();
        Ok((DpeStep { reduction, useful_macs: useful, operands_consumed: distinct }, pass_count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elements(spec: &[(usize, usize, f32)]) -> Vec<MappedElement> {
        spec.iter()
            .map(|&(group, contraction, value)| MappedElement { group, contraction, value })
            .collect()
    }

    fn ids(spec: &[i64], size: usize) -> Vec<Option<u32>> {
        let mut v: Vec<Option<u32>> =
            spec.iter().map(|&x| if x < 0 { None } else { Some(x as u32) }).collect();
        v.resize(size, None);
        v
    }

    #[test]
    fn construction_validates_size() {
        assert!(FlexDpe::new(16).is_ok());
        assert!(FlexDpe::new(3).is_err());
        assert!(FlexDpe::new(0).is_err());
    }

    #[test]
    fn load_and_step_computes_dot_products() {
        let mut dpe = FlexDpe::new(8).unwrap();
        // Two clusters: group 0 holds k={0,1,2}, group 1 holds k={1,3}.
        let els = elements(&[(0, 0, 2.0), (0, 1, 3.0), (0, 2, 4.0), (1, 1, 5.0), (1, 3, 6.0)]);
        dpe.load(&els, &ids(&[0, 0, 0, 1, 1], 8)).unwrap();
        assert_eq!(dpe.occupied(), 5);

        // Streamed vector: x[k] = k + 1.
        let step = dpe.step(&|k| (k + 1) as f32).unwrap();
        assert_eq!(step.useful_macs, 5);
        assert_eq!(step.operands_consumed, 4); // k in {0,1,2,3}
        let sums: Vec<f32> = step.reduction.sums.iter().map(|s| s.value).collect();
        // group0: 2*1 + 3*2 + 4*3 = 20; group1: 5*2 + 6*4 = 34.
        assert_eq!(sums, vec![20.0, 34.0]);
    }

    #[test]
    fn step_into_matches_step_and_reuses_buffers() {
        let mut dpe = FlexDpe::new(8).unwrap();
        let els = elements(&[(0, 0, 2.0), (0, 1, 3.0), (0, 2, 4.0), (1, 1, 5.0), (1, 3, 6.0)]);
        dpe.load(&els, &ids(&[0, 0, 0, 1, 1], 8)).unwrap();
        let mut out = DpeStep::default();
        for wave in 0..4 {
            let shift = wave as f32;
            let reference = dpe.step(&|k| (k + 1) as f32 + shift).unwrap();
            dpe.step_into(&|k| (k + 1) as f32 + shift, &mut out).unwrap();
            assert_eq!(out, reference, "wave {wave}");
        }
        // Reloading (fold swap) keeps step_into consistent too.
        let els2 = elements(&[(2, 0, 1.0), (2, 2, 1.0), (3, 1, 7.0)]);
        dpe.load(&els2, &ids(&[0, 0, 1], 8)).unwrap();
        let reference = dpe.step(&|k| k as f32).unwrap();
        dpe.step_into(&|k| k as f32, &mut out).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn step_compiled_matches_step_into_bitwise() {
        let mut dpe = FlexDpe::new(8).unwrap();
        let els = elements(&[(0, 0, 2.5), (0, 1, -3.0), (0, 2, 4.0), (1, 1, 0.5), (1, 3, -6.0)]);
        dpe.load(&els, &ids(&[0, 0, 0, 1, 1], 8)).unwrap();
        let mut a = DpeStep::default();
        let mut b = DpeStep::default();
        for wave in 0..6 {
            // Include zeros and negative zero among the streamed values.
            let col: Vec<f32> = (0..4)
                .map(|k| match (k + wave) % 4 {
                    0 => 0.0,
                    1 => -0.0,
                    2 => 1.5 + wave as f32,
                    _ => -2.25,
                })
                .collect();
            dpe.step_into(&|k| col[k], &mut a).unwrap();
            dpe.step_compiled(&col, &mut b).unwrap();
            assert_eq!(dpe.drain_cycles(), a.reduction.critical_cycles);
            assert_eq!(a.useful_macs, b.useful_macs, "wave {wave}");
            assert_eq!(a.operands_consumed, b.operands_consumed);
            assert_eq!(a.reduction.adds_performed, b.reduction.adds_performed);
            assert_eq!(a.reduction.critical_cycles, b.reduction.critical_cycles);
            assert_eq!(a.reduction.sums.len(), b.reduction.sums.len());
            for (x, y) in a.reduction.sums.iter().zip(&b.reduction.sums) {
                assert_eq!(x.vec_id, y.vec_id);
                assert_eq!(x.value.to_bits(), y.value.to_bits(), "wave {wave}");
            }
        }
        // Reload with a different layout: the program recompiles.
        dpe.load(&elements(&[(2, 0, 1.0), (3, 1, 7.0)]), &ids(&[0, 1], 8)).unwrap();
        let col = [2.0f32, 3.0];
        dpe.step_into(&|k| col[k], &mut a).unwrap();
        dpe.step_compiled(&col, &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(dpe.drain_cycles(), a.reduction.critical_cycles);
    }

    #[test]
    fn step_compiled_without_load_is_rejected() {
        let mut dpe = FlexDpe::new(4).unwrap();
        let mut out = DpeStep::default();
        // Freshly constructed: no program compiled yet.
        assert!(dpe.step_compiled(&[1.0], &mut out).is_err());
        dpe.load(&elements(&[(0, 0, 1.0)]), &ids(&[0], 4)).unwrap();
        assert!(dpe.step_compiled(&[1.0], &mut out).is_ok());
        assert_eq!(out.reduction.sums[0].value, 1.0);
        // clear() recompiles the empty (valid) program.
        dpe.clear();
        assert!(dpe.step_compiled(&[1.0], &mut out).is_ok());
        assert!(out.reduction.sums.is_empty());
        assert_eq!(dpe.drain_cycles(), 0);
    }

    #[test]
    fn repeated_loads_hit_the_route_cache() {
        let mut dpe = FlexDpe::new(16).unwrap();
        let els = elements(&[(0, 0, 1.0), (0, 1, 2.0), (1, 2, 3.0)]);
        for _ in 0..5 {
            dpe.load(&els, &ids(&[0, 0, 1], 16)).unwrap();
        }
        assert_eq!(dpe.route_cache().misses(), 1, "one cold route per distinct prefix");
        assert_eq!(dpe.route_cache().hits(), 4);
    }

    #[test]
    fn zero_operands_are_not_useful() {
        let mut dpe = FlexDpe::new(4).unwrap();
        dpe.load(&elements(&[(0, 0, 1.0), (0, 1, 1.0)]), &ids(&[0, 0], 4)).unwrap();
        let step = dpe.step(&|k| if k == 0 { 3.0 } else { 0.0 }).unwrap();
        assert_eq!(step.useful_macs, 1);
        assert_eq!(step.reduction.sums[0].value, 3.0);
    }

    #[test]
    fn clear_empties_buffers() {
        let mut dpe = FlexDpe::new(4).unwrap();
        dpe.load(&elements(&[(0, 0, 1.0)]), &ids(&[0], 4)).unwrap();
        assert_eq!(dpe.occupied(), 1);
        dpe.clear();
        assert_eq!(dpe.occupied(), 0);
        let step = dpe.step(&|_| 1.0).unwrap();
        assert!(step.reduction.sums.is_empty());
        assert_eq!(step.operands_consumed, 0);
    }

    #[test]
    fn overload_rejected() {
        let mut dpe = FlexDpe::new(2).unwrap();
        let els = elements(&[(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0)]);
        assert!(dpe.load(&els, &ids(&[0, 0], 2)).is_err());
    }

    #[test]
    fn pipeline_depths_match_paper() {
        let dpe = FlexDpe::new(128).unwrap();
        let (dist, mul, red) = dpe.pipeline_depths();
        assert_eq!(dist, 1); // O(1) Benes traversal
        assert_eq!(mul, 1);
        assert_eq!(red, 7); // log2(128) reduction levels
    }

    #[test]
    fn step_routed_matches_step() {
        // The same streamed vector through the closure path and through
        // the routed Benes path must produce identical results.
        let mut dpe = FlexDpe::new(8).unwrap();
        let els = elements(&[(0, 0, 2.0), (0, 2, 3.0), (1, 1, 4.0), (1, 2, 5.0), (1, 3, 6.0)]);
        dpe.load(&els, &ids(&[0, 0, 1, 1, 1], 8)).unwrap();

        // Streamed vector x[k] = k + 1, arriving in contraction order
        // (all four k present): arrival rank == k here.
        let arrivals = [1.0f32, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0];
        let request: Vec<Option<usize>> =
            vec![Some(0), Some(2), Some(1), Some(2), Some(3), None, None, None];
        let plain = dpe.step(&|k| (k + 1) as f32).unwrap();
        let (routed, passes) = dpe.step_routed(&arrivals, &request).unwrap();
        assert_eq!(plain.reduction.sums, routed.reduction.sums);
        assert_eq!(plain.useful_macs, routed.useful_macs);
        // This request descends once (rank 2 -> 1): two passes.
        assert_eq!(passes, 2);
        // The same request pattern again is served from the cache with
        // identical results.
        let (routed2, passes2) = dpe.step_routed(&arrivals, &request).unwrap();
        assert_eq!(routed2, routed);
        assert_eq!(passes2, passes);
        assert!(dpe.route_cache().hits() >= 1);
    }

    #[test]
    fn step_routed_monotone_single_pass() {
        let mut dpe = FlexDpe::new(4).unwrap();
        dpe.load(&elements(&[(0, 0, 1.0), (0, 1, 1.0), (0, 3, 1.0)]), &ids(&[0, 0, 0], 4)).unwrap();
        let arrivals = [10.0f32, 20.0, 30.0, 0.0];
        let request = vec![Some(0), Some(1), Some(2), None];
        let (step, passes) = dpe.step_routed(&arrivals, &request).unwrap();
        assert_eq!(passes, 1);
        assert_eq!(step.reduction.sums[0].value, 60.0);
    }

    #[test]
    fn route_caching_can_be_disabled() {
        let mut dpe = FlexDpe::new(8).unwrap();
        dpe.set_route_caching(false);
        let els = elements(&[(0, 0, 1.0), (0, 1, 2.0)]);
        for _ in 0..3 {
            dpe.load(&els, &ids(&[0, 0], 8)).unwrap();
        }
        assert_eq!(dpe.route_cache().hits(), 0);
        assert_eq!(dpe.route_cache().misses(), 3);
        let step = dpe.step(&|k| (k + 1) as f32).unwrap();
        assert_eq!(step.reduction.sums[0].value, 1.0 + 4.0);
    }

    #[test]
    fn telemetry_counts_loads_and_steps() {
        let mut dpe = FlexDpe::new(8).unwrap();
        let t = Telemetry::enabled();
        dpe.set_telemetry(t.clone());
        let els = elements(&[(0, 0, 2.0), (0, 1, 3.0)]);
        dpe.load(&els, &ids(&[0, 0], 8)).unwrap();
        dpe.load(&els, &ids(&[0, 0], 8)).unwrap();
        let mut out = DpeStep::default();
        dpe.step_into(&|k| (k + 1) as f32, &mut out).unwrap();
        assert_eq!(t.counter(Counter::BenesLoads), 2);
        assert_eq!(t.counter(Counter::RouteCacheMisses), 1);
        assert_eq!(t.counter(Counter::RouteCacheHits), 1);
        assert_eq!(t.counter(Counter::StreamSteps), 1);
        assert_eq!(t.counter(Counter::UsefulMacs), 2);
        assert_eq!(t.counter(Counter::IssuedMacs), 2);
        assert_eq!(t.counter(Counter::FanClusterSums), 1);
        let snap = t.snapshot();
        assert_eq!(snap.hist("multiplier_occupancy_pct").unwrap().count, 2);
        assert_eq!(snap.hist("fan_adder_occupancy_pct").unwrap().count, 1);
    }

    #[test]
    fn variable_sized_clusters_coexist() {
        // One 1-wide, one 4-wide and one 3-wide dot product share the DPE:
        // the flexibility a rigid array lacks.
        let mut dpe = FlexDpe::new(8).unwrap();
        let els = elements(&[
            (0, 0, 1.0),
            (1, 0, 1.0),
            (1, 1, 1.0),
            (1, 2, 1.0),
            (1, 3, 1.0),
            (2, 1, 2.0),
            (2, 2, 2.0),
            (2, 3, 2.0),
        ]);
        dpe.load(&els, &ids(&[0, 1, 1, 1, 1, 2, 2, 2], 8)).unwrap();
        let step = dpe.step(&|_| 1.0).unwrap();
        let sums: Vec<f32> = step.reduction.sums.iter().map(|s| s.value).collect();
        assert_eq!(sums, vec![1.0, 4.0, 6.0]);
        assert_eq!(step.reduction.adds_performed, 3 + 2);
    }
}
