//! Cycle accounting per the paper's Table II.

/// The latency decomposition and utilization metrics of Table II.
///
/// * **Loading latency** — cycles loading the stationary matrix; not
///   overlapped with compute.
/// * **Streaming latency** — cycles streaming the non-stationary matrix
///   through the distribution network; overlaps with multiply and
///   accumulation.
/// * **Add latency** — the last reduction drain before the next stationary
///   fold loads; not overlapped.
/// * **Stat. utilization** — fraction of occupied PE slots holding
///   non-zeros after the stationary matrix is mapped.
/// * **Compute efficiency** — useful (non-zero) MAC latency over streaming
///   latency.
/// * **Overall efficiency** — useful MAC latency over total latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleStats {
    /// Cycles spent loading stationary folds (not overlapped).
    pub loading_cycles: u64,
    /// Cycles spent streaming the moving matrix (pipelined with compute).
    pub streaming_cycles: u64,
    /// Cycles spent draining the final reduction of each fold.
    pub add_cycles: u64,
    /// Number of stationary folds executed.
    pub folds: u64,
    /// Multiplications where both operands were non-zero.
    pub useful_macs: u128,
    /// Total multiplications issued (a mapped zero still burns a slot).
    pub issued_macs: u128,
    /// Non-zero stationary elements mapped (summed over folds).
    pub mapped_nonzeros: u64,
    /// PE slots occupied by the stationary mapping (summed over folds);
    /// for rigid arrays this includes mapped zeros.
    pub occupied_slots: u64,
    /// Total PEs in the engine.
    pub pes: u64,
    /// Words read from SRAM (each unique word once; multicast is free).
    pub sram_reads: u64,
    /// Benes route configurations replayed from the route cache.
    pub route_cache_hits: u64,
    /// Benes route configurations derived cold (cache miss or caching
    /// disabled).
    pub route_cache_misses: u64,
    /// Streaming cycles whose step carried no non-zero streamed operands —
    /// dead cycles the event scheduler fast-forwards in O(1). They remain
    /// part of [`CycleStats::streaming_cycles`] (and thus total cycles);
    /// the lockstep oracle executes them and counts them identically.
    pub idle_cycles_skipped: u64,
    /// Fault events that fired during the run (zero unless a
    /// [`FaultPlan`](crate::fault::FaultPlan) was armed).
    pub faults_injected: u64,
    /// Fault effects the ABFT checksums detected.
    pub faults_detected: u64,
    /// Fault effects remediated (in-place correction or recompute) with the
    /// final result verified correct.
    pub faults_corrected: u64,
    /// Fault effects that left the final result wrong — either undetected
    /// by the checksums or uncorrectable within the recompute budget.
    pub faults_escaped: u64,
}

impl CycleStats {
    /// Total latency: loading + streaming + add (Table II).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.loading_cycles + self.streaming_cycles + self.add_cycles
    }

    /// Percent of occupied stationary slots holding non-zeros.
    ///
    /// SIGMA maps only non-zeros, so this is 1.0 by construction; rigid
    /// arrays that must map zeros report the non-zero fraction.
    #[must_use]
    pub fn stationary_utilization(&self) -> f64 {
        if self.occupied_slots == 0 {
            return 0.0;
        }
        self.mapped_nonzeros as f64 / self.occupied_slots as f64
    }

    /// Useful MAC latency: the cycles the useful work would take at full
    /// array width.
    #[must_use]
    pub fn useful_mac_cycles(&self) -> f64 {
        if self.pes == 0 {
            return 0.0;
        }
        self.useful_macs as f64 / self.pes as f64
    }

    /// Useful MAC latency / streaming latency (Table II).
    #[must_use]
    pub fn compute_efficiency(&self) -> f64 {
        if self.streaming_cycles == 0 {
            return 0.0;
        }
        (self.useful_mac_cycles() / self.streaming_cycles as f64).min(1.0)
    }

    /// Useful MAC latency / total latency (Table II).
    #[must_use]
    pub fn overall_efficiency(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            return 0.0;
        }
        (self.useful_mac_cycles() / total as f64).min(1.0)
    }

    /// Merges the accounting of two runs (e.g. two GEMMs back to back, or
    /// the per-DPU pieces of a multi-GEMM schedule).
    #[must_use]
    pub fn merged(&self, other: &CycleStats) -> CycleStats {
        CycleStats {
            loading_cycles: self.loading_cycles + other.loading_cycles,
            streaming_cycles: self.streaming_cycles + other.streaming_cycles,
            add_cycles: self.add_cycles + other.add_cycles,
            folds: self.folds + other.folds,
            useful_macs: self.useful_macs + other.useful_macs,
            issued_macs: self.issued_macs + other.issued_macs,
            mapped_nonzeros: self.mapped_nonzeros + other.mapped_nonzeros,
            occupied_slots: self.occupied_slots + other.occupied_slots,
            pes: self.pes.max(other.pes),
            sram_reads: self.sram_reads + other.sram_reads,
            route_cache_hits: self.route_cache_hits + other.route_cache_hits,
            route_cache_misses: self.route_cache_misses + other.route_cache_misses,
            idle_cycles_skipped: self.idle_cycles_skipped + other.idle_cycles_skipped,
            faults_injected: self.faults_injected + other.faults_injected,
            faults_detected: self.faults_detected + other.faults_detected,
            faults_corrected: self.faults_corrected + other.faults_corrected,
            faults_escaped: self.faults_escaped + other.faults_escaped,
        }
    }
}

impl std::fmt::Display for CycleStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "load {} + stream {} + add {} = {} cycles | folds {} | stat-util {:.1}% | \
             compute-eff {:.1}% | overall-eff {:.1}%",
            self.loading_cycles,
            self.streaming_cycles,
            self.add_cycles,
            self.total_cycles(),
            self.folds,
            100.0 * self.stationary_utilization(),
            100.0 * self.compute_efficiency(),
            100.0 * self.overall_efficiency(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CycleStats {
        CycleStats {
            loading_cycles: 100,
            streaming_cycles: 800,
            add_cycles: 100,
            folds: 2,
            useful_macs: 64_000,
            issued_macs: 80_000,
            mapped_nonzeros: 90,
            occupied_slots: 100,
            pes: 100,
            sram_reads: 5_000,
            route_cache_hits: 7,
            route_cache_misses: 3,
            ..CycleStats::default()
        }
    }

    #[test]
    fn totals_and_ratios() {
        let s = sample();
        assert_eq!(s.total_cycles(), 1000);
        assert!((s.stationary_utilization() - 0.9).abs() < 1e-12);
        assert!((s.useful_mac_cycles() - 640.0).abs() < 1e-12);
        assert!((s.compute_efficiency() - 0.8).abs() < 1e-12);
        assert!((s.overall_efficiency() - 0.64).abs() < 1e-12);
    }

    #[test]
    fn efficiency_capped_at_one() {
        let mut s = sample();
        s.useful_macs = 10_000_000;
        assert_eq!(s.compute_efficiency(), 1.0);
        assert_eq!(s.overall_efficiency(), 1.0);
    }

    #[test]
    fn zero_division_guards() {
        let s = CycleStats::default();
        assert_eq!(s.total_cycles(), 0);
        assert_eq!(s.stationary_utilization(), 0.0);
        assert_eq!(s.compute_efficiency(), 0.0);
        assert_eq!(s.overall_efficiency(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let s = sample().merged(&sample());
        assert_eq!(s.total_cycles(), 2000);
        assert_eq!(s.folds, 4);
        assert_eq!(s.useful_macs, 128_000);
        assert_eq!(s.pes, 100);
        assert_eq!(s.route_cache_hits, 14);
        assert_eq!(s.route_cache_misses, 6);
    }

    #[test]
    fn display_mentions_all_phases() {
        let txt = sample().to_string();
        assert!(txt.contains("load 100"));
        assert!(txt.contains("stream 800"));
        assert!(txt.contains("overall-eff"));
    }
}
