//! SIGMA configuration: array geometry, bandwidth, and dataflow.

use crate::controller::PackingOrder;
use std::error::Error;
use std::fmt;

/// The dataflows SIGMA supports (Sec. IV-D, Fig. 4d/e).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// `N-sta, M-str`: the `KN` (weight) matrix is stationary, the `MK`
    /// (input) matrix streams — the TPU-style weight-stationary dataflow.
    WeightStationary,
    /// `M-sta, N-str`: the `MK` (input) matrix is stationary, the `KN`
    /// matrix streams — input-stationary.
    InputStationary,
    /// `MK-str, KN-str`: No Local Reuse. Only useful multiplication pairs
    /// are streamed; nothing is stationary. 100% compute utilization at
    /// the cost of double operand bandwidth (Fig. 4e, Fig. 10).
    NoLocalReuse,
}

impl Dataflow {
    /// All dataflows in Fig. 10's order.
    pub const ALL: [Dataflow; 3] =
        [Dataflow::WeightStationary, Dataflow::InputStationary, Dataflow::NoLocalReuse];

    /// Display name using the paper's notation.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Dataflow::WeightStationary => "N-sta, M-str",
            Dataflow::InputStationary => "M-sta, N-str",
            Dataflow::NoLocalReuse => "M-str, N-str",
        }
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors from SIGMA configuration and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigmaError {
    /// Flex-DPE size must be a power of two (for the Benes/FAN networks).
    DpeSizeNotPowerOfTwo(usize),
    /// At least one Flex-DPE is required.
    NoDpes,
    /// Bandwidth must be non-zero.
    ZeroBandwidth,
    /// GEMM operand inner dimensions disagree.
    DimensionMismatch {
        /// `A` is `m x k_a`.
        k_a: usize,
        /// `B` is `k_b x n`.
        k_b: usize,
    },
    /// A GEMM operand contains NaN or infinity; the datapath model is
    /// only defined over finite values.
    NonFiniteInput {
        /// Which operand (`"A"` or `"B"`).
        operand: &'static str,
    },
    /// An internal simulator invariant was violated (a bug, not a user
    /// error); carried instead of panicking so sweep drivers can record
    /// the cell and continue.
    Internal(String),
    /// The run was cancelled cooperatively (a watchdog set the
    /// [`CancelToken`](crate::CancelToken) and the simulator stopped at
    /// the next fold boundary). No partial result is returned.
    Cancelled,
}

impl fmt::Display for SigmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigmaError::DpeSizeNotPowerOfTwo(s) => {
                write!(f, "flex-dpe size must be a power of two >= 2, got {s}")
            }
            SigmaError::NoDpes => write!(f, "at least one flex-dpe is required"),
            SigmaError::ZeroBandwidth => write!(f, "input bandwidth must be non-zero"),
            SigmaError::DimensionMismatch { k_a, k_b } => {
                write!(f, "inner dimensions disagree: A has K={k_a}, B has K={k_b}")
            }
            SigmaError::NonFiniteInput { operand } => {
                write!(f, "operand {operand} contains a non-finite value (NaN or infinity)")
            }
            SigmaError::Internal(what) => {
                write!(f, "internal simulator invariant violated: {what}")
            }
            SigmaError::Cancelled => write!(f, "run cancelled at a fold boundary"),
        }
    }
}

impl Error for SigmaError {}

/// Configuration of a SIGMA instance.
///
/// The paper's evaluated instance is 128 Flex-DPEs of 128 multipliers each
/// with 128 words/cycle of SRAM read bandwidth ([`SigmaConfig::paper`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigmaConfig {
    num_dpes: usize,
    dpe_size: usize,
    input_bandwidth: usize,
    stream_bandwidth: usize,
    dataflow: Dataflow,
    double_buffered: bool,
    packing: PackingOrder,
    route_cache: bool,
    telemetry: bool,
    lockstep: bool,
}

impl SigmaConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// * [`SigmaError::NoDpes`] if `num_dpes == 0`.
    /// * [`SigmaError::DpeSizeNotPowerOfTwo`] if `dpe_size` is not a power
    ///   of two at least 2 (the Benes and FAN networks require it).
    /// * [`SigmaError::ZeroBandwidth`] if `input_bandwidth == 0`.
    pub fn new(
        num_dpes: usize,
        dpe_size: usize,
        input_bandwidth: usize,
        dataflow: Dataflow,
    ) -> Result<Self, SigmaError> {
        if num_dpes == 0 {
            return Err(SigmaError::NoDpes);
        }
        if dpe_size < 2 || !dpe_size.is_power_of_two() {
            return Err(SigmaError::DpeSizeNotPowerOfTwo(dpe_size));
        }
        if input_bandwidth == 0 {
            return Err(SigmaError::ZeroBandwidth);
        }
        Ok(Self {
            num_dpes,
            dpe_size,
            input_bandwidth,
            stream_bandwidth: input_bandwidth,
            dataflow,
            double_buffered: false,
            packing: PackingOrder::GroupMajor,
            route_cache: true,
            telemetry: false,
            lockstep: false,
        })
    }

    /// Creates a configuration, repairing invalid geometry instead of
    /// failing: `num_dpes` is raised to at least 1, `dpe_size` is rounded
    /// up to the next power of two (minimum 2), and `input_bandwidth` is
    /// raised to at least 1. Useful for static tables and benchmark
    /// registries whose shapes are known-good by construction; prefer
    /// [`SigmaConfig::new`] when invalid input should be reported.
    #[must_use]
    pub fn clamped(
        num_dpes: usize,
        dpe_size: usize,
        input_bandwidth: usize,
        dataflow: Dataflow,
    ) -> Self {
        let num_dpes = num_dpes.max(1);
        let dpe_size = dpe_size.max(2).next_power_of_two();
        let input_bandwidth = input_bandwidth.max(1);
        Self {
            num_dpes,
            dpe_size,
            input_bandwidth,
            stream_bandwidth: input_bandwidth,
            dataflow,
            double_buffered: false,
            packing: PackingOrder::GroupMajor,
            route_cache: true,
            telemetry: false,
            lockstep: false,
        }
    }

    /// The paper's evaluated instance: 128 Flex-DPE-128 (16384 PEs),
    /// 128 words/cycle SRAM *loading* bandwidth, weight-stationary by
    /// default. Following Sec. VI-A ("we allow greater input bandwidth to
    /// distribute larger chunks of the streaming matrix in one cycle"),
    /// the streaming side is array-wide.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            num_dpes: 128,
            dpe_size: 128,
            input_bandwidth: 128,
            stream_bandwidth: 128 * 128,
            dataflow: Dataflow::WeightStationary,
            double_buffered: false,
            packing: PackingOrder::GroupMajor,
            route_cache: true,
            telemetry: false,
            lockstep: false,
        }
    }

    /// Number of Flex-DPEs.
    #[must_use]
    pub fn num_dpes(&self) -> usize {
        self.num_dpes
    }

    /// Multipliers per Flex-DPE.
    #[must_use]
    pub fn dpe_size(&self) -> usize {
        self.dpe_size
    }

    /// Total multipliers (PEs).
    #[must_use]
    pub fn total_pes(&self) -> usize {
        self.num_dpes * self.dpe_size
    }

    /// SRAM read bandwidth (unique words per cycle) for loading the
    /// stationary operand.
    #[must_use]
    pub fn input_bandwidth(&self) -> usize {
        self.input_bandwidth
    }

    /// Distribution bandwidth (unique words per cycle) for the streaming
    /// operand. Defaults to the loading bandwidth; the paper's evaluation
    /// widens it (Sec. VI-A).
    #[must_use]
    pub fn stream_bandwidth(&self) -> usize {
        self.stream_bandwidth
    }

    /// Whether stationary loads are double-buffered: when enabled, fold
    /// `i+1`'s loading overlaps fold `i`'s streaming, hiding all but the
    /// first load (and any residue when loads exceed the streaming time).
    /// The paper's Table II treats loading as *not* overlapped; this
    /// switch exists for the ablation study.
    #[must_use]
    pub fn double_buffered(&self) -> bool {
        self.double_buffered
    }

    /// Returns a copy with double-buffered stationary loading.
    #[must_use]
    pub fn with_double_buffering(mut self, enabled: bool) -> Self {
        self.double_buffered = enabled;
        self
    }

    /// The stationary fold packing order (see [`PackingOrder`]).
    #[must_use]
    pub fn packing_order(&self) -> PackingOrder {
        self.packing
    }

    /// Returns a copy with a different fold packing order.
    #[must_use]
    pub fn with_packing_order(mut self, packing: PackingOrder) -> Self {
        self.packing = packing;
        self
    }

    /// Whether Benes route configurations are memoized across folds
    /// (default: on). Caching is exact — cache hits replay switch
    /// settings the cold router already produced and validated — so
    /// simulated outputs and cycle statistics are identical either way;
    /// disabling it exists for differential testing and perf analysis.
    #[must_use]
    pub fn route_cache(&self) -> bool {
        self.route_cache
    }

    /// Returns a copy with Benes route memoization on or off.
    #[must_use]
    pub fn with_route_cache(mut self, enabled: bool) -> Self {
        self.route_cache = enabled;
        self
    }

    /// Whether the engine records telemetry (default: off). Telemetry is
    /// observational only — counters and histograms accumulate in a
    /// [`sigma_telemetry::Telemetry`] registry, and simulated outputs and
    /// cycle statistics are identical either way.
    #[must_use]
    pub fn telemetry(&self) -> bool {
        self.telemetry
    }

    /// Returns a copy with telemetry recording on or off.
    #[must_use]
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Whether the engine runs the legacy lockstep tick loop instead of
    /// the event-driven scheduler (default: off, i.e. event-driven).
    /// The lockstep loop ticks every Flex-DPE every streaming step; it is
    /// kept as a debug oracle — both paths produce bitwise-identical
    /// [`EngineRun`](crate::engine_api::EngineRun)s (outputs, stats, and
    /// traces), which `perf_bench --lockstep-check` asserts in CI.
    #[must_use]
    pub fn lockstep(&self) -> bool {
        self.lockstep
    }

    /// Returns a copy with the lockstep tick loop forced on or off.
    #[must_use]
    pub fn with_lockstep(mut self, enabled: bool) -> Self {
        self.lockstep = enabled;
        self
    }

    /// Returns a copy with a different streaming bandwidth.
    ///
    /// # Errors
    ///
    /// [`SigmaError::ZeroBandwidth`] if `bw == 0`.
    pub fn with_stream_bandwidth(mut self, bw: usize) -> Result<Self, SigmaError> {
        if bw == 0 {
            return Err(SigmaError::ZeroBandwidth);
        }
        self.stream_bandwidth = bw;
        Ok(self)
    }

    /// Returns a copy with a different streaming bandwidth, clamped to
    /// at least 1 word/cycle instead of failing on zero.
    #[must_use]
    pub fn with_stream_bandwidth_clamped(mut self, bw: usize) -> Self {
        self.stream_bandwidth = bw.max(1);
        self
    }

    /// The configured dataflow.
    #[must_use]
    pub fn dataflow(&self) -> Dataflow {
        self.dataflow
    }

    /// Returns a copy with a different dataflow.
    #[must_use]
    pub fn with_dataflow(mut self, dataflow: Dataflow) -> Self {
        self.dataflow = dataflow;
        self
    }

    /// Returns a copy with a different bandwidth.
    ///
    /// # Errors
    ///
    /// [`SigmaError::ZeroBandwidth`] if `bw == 0`.
    pub fn with_bandwidth(mut self, bw: usize) -> Result<Self, SigmaError> {
        if bw == 0 {
            return Err(SigmaError::ZeroBandwidth);
        }
        self.input_bandwidth = bw;
        Ok(self)
    }

    /// Canonical string naming every knob that can influence a simulated
    /// result — geometry, bandwidths, dataflow, buffering, packing, and
    /// the route-cache/lockstep switches. Two configurations with equal
    /// keys produce bitwise-identical [`EngineRun`]s on identical
    /// operands, so result caches key cells by this string (plus workload
    /// and seed) instead of by the lossy display name.
    ///
    /// The route-cache and lockstep switches are included even though
    /// both paths are proven bitwise-equal: the cache contract is "equal
    /// key ⇒ equal bytes by construction", not "equal bytes by theorem".
    /// Telemetry is excluded — it is observational only and shares that
    /// guarantee with neither switch. The leading `c1` is this key's own
    /// layout revision; bump it when a knob is added or renamed.
    ///
    /// [`EngineRun`]: crate::engine_api::EngineRun
    #[must_use]
    pub fn canonical_key(&self) -> String {
        let packing = match self.packing {
            PackingOrder::GroupMajor => "group",
            PackingOrder::ContractionMajor => "contraction",
        };
        let dataflow = match self.dataflow {
            Dataflow::WeightStationary => "ws",
            Dataflow::InputStationary => "is",
            Dataflow::NoLocalReuse => "nlr",
        };
        format!(
            "c1;dpes={};dpe={};ibw={};sbw={};df={dataflow};dbuf={};pack={packing};rc={};ls={}",
            self.num_dpes,
            self.dpe_size,
            self.input_bandwidth,
            self.stream_bandwidth,
            u8::from(self.double_buffered),
            u8::from(self.route_cache),
            u8::from(self.lockstep),
        )
    }
}

impl Default for SigmaConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config() {
        let c = SigmaConfig::paper();
        assert_eq!(c.total_pes(), 16384);
        assert_eq!(c.num_dpes(), 128);
        assert_eq!(c.dpe_size(), 128);
        assert_eq!(c.input_bandwidth(), 128);
        assert_eq!(SigmaConfig::default(), c);
    }

    #[test]
    fn validation() {
        assert_eq!(
            SigmaConfig::new(0, 128, 128, Dataflow::WeightStationary),
            Err(SigmaError::NoDpes)
        );
        assert_eq!(
            SigmaConfig::new(4, 48, 128, Dataflow::WeightStationary),
            Err(SigmaError::DpeSizeNotPowerOfTwo(48))
        );
        assert_eq!(
            SigmaConfig::new(4, 1, 128, Dataflow::WeightStationary),
            Err(SigmaError::DpeSizeNotPowerOfTwo(1))
        );
        assert_eq!(
            SigmaConfig::new(4, 64, 0, Dataflow::WeightStationary),
            Err(SigmaError::ZeroBandwidth)
        );
        assert!(SigmaConfig::new(4, 64, 32, Dataflow::NoLocalReuse).is_ok());
    }

    #[test]
    fn with_modifiers() {
        let c = SigmaConfig::paper().with_dataflow(Dataflow::InputStationary);
        assert_eq!(c.dataflow(), Dataflow::InputStationary);
        let c2 = c.with_bandwidth(256).unwrap();
        assert_eq!(c2.input_bandwidth(), 256);
        assert!(c.with_bandwidth(0).is_err());
        assert!(!c.telemetry());
        assert!(c.with_telemetry(true).telemetry());
        assert!(!c.lockstep());
        assert!(c.with_lockstep(true).lockstep());
    }

    #[test]
    fn clamped_repairs_geometry() {
        let c = SigmaConfig::clamped(0, 48, 0, Dataflow::WeightStationary);
        assert_eq!(c.num_dpes(), 1);
        assert_eq!(c.dpe_size(), 64);
        assert_eq!(c.input_bandwidth(), 1);
        // Valid geometry passes through unchanged and matches new().
        let a = SigmaConfig::clamped(4, 64, 32, Dataflow::NoLocalReuse);
        let b = SigmaConfig::new(4, 64, 32, Dataflow::NoLocalReuse).unwrap();
        assert_eq!(a, b);
        assert_eq!(c.with_stream_bandwidth_clamped(0).stream_bandwidth(), 1);
        assert_eq!(c.with_stream_bandwidth_clamped(256).stream_bandwidth(), 256);
    }

    #[test]
    fn dataflow_names() {
        assert_eq!(Dataflow::WeightStationary.to_string(), "N-sta, M-str");
        assert_eq!(Dataflow::NoLocalReuse.name(), "M-str, N-str");
        assert_eq!(Dataflow::ALL.len(), 3);
    }

    #[test]
    fn error_display() {
        assert!(SigmaError::DimensionMismatch { k_a: 3, k_b: 4 }.to_string().contains("K=3"));
    }

    #[test]
    fn canonical_key_covers_every_result_affecting_knob() {
        let base = SigmaConfig::new(2, 8, 16, Dataflow::WeightStationary).unwrap();
        assert_eq!(
            base.canonical_key(),
            "c1;dpes=2;dpe=8;ibw=16;sbw=16;df=ws;dbuf=0;pack=group;rc=1;ls=0"
        );
        let key = base.canonical_key();
        // Every knob that changes simulated results must change the key.
        let variants = [
            SigmaConfig::new(4, 8, 16, Dataflow::WeightStationary).unwrap(),
            SigmaConfig::new(2, 16, 16, Dataflow::WeightStationary).unwrap(),
            base.with_bandwidth(32).unwrap(),
            base.with_stream_bandwidth_clamped(8),
            base.with_dataflow(Dataflow::InputStationary),
            base.with_dataflow(Dataflow::NoLocalReuse),
            base.with_double_buffering(true),
            base.with_packing_order(PackingOrder::ContractionMajor),
            base.with_route_cache(false),
            base.with_lockstep(true),
        ];
        let mut keys: Vec<String> = variants.iter().map(SigmaConfig::canonical_key).collect();
        keys.push(key.clone());
        let distinct: std::collections::BTreeSet<&String> = keys.iter().collect();
        assert_eq!(distinct.len(), keys.len(), "all knob variants key distinctly");
        // Telemetry is observational and must NOT perturb the key.
        assert_eq!(base.with_telemetry(true).canonical_key(), key);
    }
}
