//! Functional cycle-level execution of GEMMs on SIGMA.
//!
//! [`SigmaSim::run_gemm`] pushes real `f32` operands through the modeled
//! pipeline — sparsity controller → (Benes-modeled) distribution →
//! multipliers → per-Flex-DPE FAN reduction → output accumulation — and
//! returns both the numeric result and the exact Table-II cycle
//! accounting. The numeric result is tree-reduced in the same association
//! order as the hardware, and the test suite asserts it matches the
//! reference GEMM.

use crate::cancel::CancelToken;
use crate::config::{Dataflow, SigmaConfig, SigmaError};
use crate::controller::ControllerPlan;
use crate::fault::{FaultCounters, FaultInjector, FaultPlan, FaultReport};
use crate::flex_dpe::{DpeStep, FlexDpe};
use crate::sched::{Event, EventQueue};
use crate::stats::CycleStats;
use crate::trace::{Phase, Trace};
use sigma_interconnect::{Fan, FanReduction, FanScratch};
use sigma_matrix::abft::{check_product, correct_single, residual_tolerance, AbftVerdict};
use sigma_matrix::{Bitmap, Matrix, SparseMatrix};
use sigma_telemetry::{Counter, Hist, Telemetry};

/// The outcome of one GEMM on SIGMA: the numeric product and the cycle
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmRun {
    /// The computed `M x N` product.
    pub result: Matrix,
    /// Table-II latency and utilization metrics.
    pub stats: CycleStats,
}

/// How [`SigmaSim::run_gemm_checked`] recovers from detected faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Full re-executions allowed after a failed correction (bounded
    /// recompute; 0 disables recompute entirely).
    pub max_recomputes: u32,
    /// ABFT residual tolerance override; `None` derives one from the
    /// problem shape via [`sigma_matrix::abft::residual_tolerance`].
    pub tolerance: Option<f32>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self { max_recomputes: 2, tolerance: None }
    }
}

/// A SIGMA instance ready to execute GEMMs functionally.
#[derive(Debug, Clone)]
pub struct SigmaSim {
    config: SigmaConfig,
    fan: Fan,
    telemetry: Telemetry,
}

impl SigmaSim {
    /// Creates a simulator for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::DpeSizeNotPowerOfTwo`] if the configured
    /// Flex-DPE size cannot host the FAN/Benes networks (guarded already
    /// by [`SigmaConfig::new`], re-checked here for defense in depth).
    pub fn new(config: SigmaConfig) -> Result<Self, SigmaError> {
        let fan = Fan::new(config.dpe_size())
            .map_err(|_| SigmaError::DpeSizeNotPowerOfTwo(config.dpe_size()))?;
        let telemetry = if config.telemetry() { Telemetry::enabled() } else { Telemetry::off() };
        Ok(Self { config, fan, telemetry })
    }

    /// Creates a simulator, clamping the configured Flex-DPE size to a
    /// valid FAN/Benes geometry instead of failing. A configuration from
    /// [`SigmaConfig::new`] / [`SigmaConfig::clamped`] is always valid,
    /// making this constructor exact for them; prefer [`SigmaSim::new`]
    /// when invalid input should be reported.
    #[must_use]
    pub fn new_clamped(config: SigmaConfig) -> Self {
        let fan = Fan::new_clamped(config.dpe_size());
        let telemetry = if config.telemetry() { Telemetry::enabled() } else { Telemetry::off() };
        Self { config, fan, telemetry }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SigmaConfig {
        &self.config
    }

    /// The simulator's telemetry handle — disabled (recording is a no-op)
    /// unless the configuration asked for telemetry
    /// ([`SigmaConfig::with_telemetry`]). Counters accumulate across runs;
    /// call [`Telemetry::reset`] between runs for per-run numbers.
    #[must_use]
    pub fn telemetry_handle(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Executes `C = A x B` with the configured dataflow.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::DimensionMismatch`] when `A.cols() != B.rows()`.
    pub fn run_gemm(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<GemmRun, SigmaError> {
        self.run_gemm_impl(a, b, None, None, None).map(|(run, _)| run)
    }

    /// Like [`SigmaSim::run_gemm`], but polls `cancel` at every fold (or
    /// NLR wave) boundary and stops early when a watchdog sets it. An
    /// un-cancelled run is byte-identical to [`SigmaSim::run_gemm`].
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::Cancelled`] when the token fires before the
    /// run completes, plus everything [`SigmaSim::run_gemm`] can return.
    pub fn run_gemm_cancellable(
        &self,
        a: &SparseMatrix,
        b: &SparseMatrix,
        cancel: &CancelToken,
    ) -> Result<GemmRun, SigmaError> {
        self.run_gemm_impl(a, b, None, None, Some(cancel)).map(|(run, _)| run)
    }

    /// Cancellable variant of [`SigmaSim::run_gemm_traced`]: polls
    /// `cancel` at fold boundaries like
    /// [`SigmaSim::run_gemm_cancellable`].
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::Cancelled`] when the token fires, plus
    /// everything [`SigmaSim::run_gemm_traced`] can return.
    pub fn run_gemm_traced_cancellable(
        &self,
        a: &SparseMatrix,
        b: &SparseMatrix,
        cancel: &CancelToken,
    ) -> Result<(GemmRun, Trace), SigmaError> {
        let mut trace = Trace::new();
        let (run, _) = self.run_gemm_impl(a, b, Some(&mut trace), None, Some(cancel))?;
        Ok((run, trace))
    }

    /// Like [`SigmaSim::run_gemm`], but also returns a cycle-stamped
    /// [`Trace`] of every load / streaming step / drain event, validated
    /// to be consistent with the returned stats.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::DimensionMismatch`] when `A.cols() != B.rows()`.
    pub fn run_gemm_traced(
        &self,
        a: &SparseMatrix,
        b: &SparseMatrix,
    ) -> Result<(GemmRun, Trace), SigmaError> {
        let mut trace = Trace::new();
        let (run, _) = self.run_gemm_impl(a, b, Some(&mut trace), None, None)?;
        Ok((run, trace))
    }

    fn run_gemm_impl(
        &self,
        a: &SparseMatrix,
        b: &SparseMatrix,
        mut trace: Option<&mut Trace>,
        mut faults: Option<&mut FaultInjector<'_>>,
        cancel: Option<&CancelToken>,
    ) -> Result<(GemmRun, ()), SigmaError> {
        if a.cols() != b.rows() {
            return Err(SigmaError::DimensionMismatch { k_a: a.cols(), k_b: b.rows() });
        }
        if !a.all_finite() {
            return Err(SigmaError::NonFiniteInput { operand: "A" });
        }
        if !b.all_finite() {
            return Err(SigmaError::NonFiniteInput { operand: "B" });
        }
        let (m, n) = (a.rows(), b.cols());
        match self.config.dataflow() {
            Dataflow::InputStationary => {
                // MK stationary (groups = rows m), KN streaming (steps = n).
                let mut out = Matrix::zeros(m, n);
                let stats = self.run_stationary(
                    a,
                    b,
                    trace.as_deref_mut(),
                    faults.as_deref_mut(),
                    cancel,
                    |group, step, v| {
                        let cur = out.get(group, step);
                        out.set(group, step, cur + v);
                    },
                )?;
                Ok((GemmRun { result: out, stats }, ()))
            }
            Dataflow::WeightStationary => {
                // KN stationary: canonical groups are columns n (transpose
                // B), streaming is MK presented contraction-major
                // (transpose A so steps are rows m).
                let bt = b.transposed();
                let at = a.transposed();
                let mut out = Matrix::zeros(m, n);
                let stats = self.run_stationary(
                    &bt,
                    &at,
                    trace,
                    faults.as_deref_mut(),
                    cancel,
                    |group, step, v| {
                        let cur = out.get(step, group);
                        out.set(step, group, cur + v);
                    },
                )?;
                Ok((GemmRun { result: out, stats }, ()))
            }
            Dataflow::NoLocalReuse => {
                Ok((self.run_no_local_reuse(a, b, trace, faults, cancel)?, ()))
            }
        }
    }

    /// Training backward pass for weights: computes `A^T x B` (the
    /// `(MK)^T x MN` weight-gradient GEMM of Sec. I) on the accelerator.
    /// `A` is `K x M`-shaped as stored (i.e. the forward activation
    /// matrix), transposed on the fly by the controller's mapping.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::DimensionMismatch`] when `a.rows() != b.rows()`.
    pub fn run_gemm_at(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<GemmRun, SigmaError> {
        if a.rows() != b.rows() {
            return Err(SigmaError::DimensionMismatch { k_a: a.rows(), k_b: b.rows() });
        }
        self.run_gemm(&a.transposed(), b)
    }

    /// Training backward pass for inputs: computes `A x B^T` (the
    /// `MN x (KN)^T` input-gradient GEMM of Sec. I) on the accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::DimensionMismatch`] when `a.cols() != b.cols()`.
    pub fn run_gemm_bt(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<GemmRun, SigmaError> {
        if a.cols() != b.cols() {
            return Err(SigmaError::DimensionMismatch { k_a: a.cols(), k_b: b.cols() });
        }
        self.run_gemm(a, &b.transposed())
    }

    /// Runs the GEMM under both stationary dataflows and returns the one
    /// with the lower total latency, as the paper's evaluation does
    /// ("we run both dataflows and report the higher performing dataflow").
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::DimensionMismatch`] when `A.cols() != B.rows()`.
    pub fn run_best_stationary(
        &self,
        a: &SparseMatrix,
        b: &SparseMatrix,
    ) -> Result<(Dataflow, GemmRun), SigmaError> {
        let ws =
            Self::new(self.config.with_dataflow(Dataflow::WeightStationary))?.run_gemm(a, b)?;
        let is = Self::new(self.config.with_dataflow(Dataflow::InputStationary))?.run_gemm(a, b)?;
        if ws.stats.total_cycles() <= is.stats.total_cycles() {
            Ok((Dataflow::WeightStationary, ws))
        } else {
            Ok((Dataflow::InputStationary, is))
        }
    }

    /// Executes `C = A x B` with a [`FaultPlan`] armed: faults fire at
    /// their sites, and the returned [`FaultReport`] lists what fired,
    /// stamped with cycle and site. No detection or recovery is attempted
    /// — use [`SigmaSim::run_gemm_checked`] for the ABFT-protected path.
    ///
    /// An empty plan makes this byte-identical to [`SigmaSim::run_gemm`]
    /// (asserted by property tests in the bench crate).
    ///
    /// # Errors
    ///
    /// Same as [`SigmaSim::run_gemm`].
    pub fn run_gemm_with_faults(
        &self,
        a: &SparseMatrix,
        b: &SparseMatrix,
        plan: &FaultPlan,
    ) -> Result<(GemmRun, FaultReport), SigmaError> {
        let mut injector = FaultInjector::new(plan);
        let (mut run, _) = self.run_gemm_impl(a, b, None, Some(&mut injector), None)?;
        let report = injector.into_report();
        run.stats.faults_injected = report.counters.injected;
        Ok((run, report))
    }

    /// Executes `C = A x B` with a [`FaultPlan`] armed *and* the ABFT
    /// row/column checksums watching the result: detected corruptions are
    /// corrected in place when single-site, otherwise the GEMM is
    /// recomputed up to [`RecoveryPolicy::max_recomputes`] times (transient
    /// faults stay consumed across recomputes; stuck-at defects keep
    /// firing). The returned stats merge the cycle cost of every attempt
    /// and carry the fault counters; the report additionally says whether
    /// the faults had any numeric effect and how many attempts ran.
    ///
    /// # Errors
    ///
    /// Same as [`SigmaSim::run_gemm`].
    pub fn run_gemm_checked(
        &self,
        a: &SparseMatrix,
        b: &SparseMatrix,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
    ) -> Result<(GemmRun, FaultReport), SigmaError> {
        let ad = a.to_dense();
        let bd = b.to_dense();
        let tol =
            policy.tolerance.unwrap_or_else(|| residual_tolerance(a.rows(), b.cols(), a.cols()));
        // Ground truth for escape accounting: the fault-free execution has
        // the identical accumulation order, so agreement is exact up to
        // the faults themselves. Only needed when faults are armed.
        let baseline = if plan.is_empty() {
            None
        } else {
            Some(self.run_gemm_impl(a, b, None, None, None)?.0)
        };

        let mut injector = FaultInjector::new(plan);
        let mut counters = FaultCounters::default();
        let mut attempts = 0u32;
        let mut numeric_effect = false;
        let mut merged: Option<CycleStats> = None;
        let (mut current, clean) = loop {
            attempts += 1;
            let (mut run, _) = self.run_gemm_impl(a, b, None, Some(&mut injector), None)?;
            merged = Some(match merged {
                Some(m) => m.merged(&run.stats),
                None => run.stats,
            });
            if attempts == 1 {
                if let Some(base) = &baseline {
                    numeric_effect =
                        !run.result.all_finite() || run.result.max_abs_diff(&base.result) > tol;
                }
            }
            match check_product(&ad, &bd, &run.result, tol) {
                AbftVerdict::Clean => break (run, true),
                AbftVerdict::SingleSite { row, col, delta } => {
                    counters.detected += 1;
                    correct_single(&mut run.result, row, col, delta);
                    if check_product(&ad, &bd, &run.result, tol).is_clean() {
                        counters.corrected += 1;
                        break (run, true);
                    }
                }
                AbftVerdict::MultiSite { .. } => {
                    counters.detected += 1;
                }
            }
            if attempts > policy.max_recomputes {
                break (run, false);
            }
        };
        // A recompute that came back clean is a successful remediation.
        if clean && attempts > 1 && counters.corrected == 0 {
            counters.corrected += 1;
        }
        // Escape accounting against ground truth: a final result that
        // still disagrees with the fault-free execution escaped recovery —
        // whether the checksums missed it or the recompute budget ran out.
        if let Some(base) = &baseline {
            let wrong =
                !current.result.all_finite() || current.result.max_abs_diff(&base.result) > tol;
            if wrong {
                counters.escaped += 1;
            }
        }

        counters.injected = injector.fired().len() as u64;
        let mut stats = merged.unwrap_or_default();
        stats.faults_injected = counters.injected;
        stats.faults_detected = counters.detected;
        stats.faults_corrected = counters.corrected;
        stats.faults_escaped = counters.escaped;
        current.stats = stats;
        let report =
            FaultReport { fired: injector.into_report().fired, counters, attempts, numeric_effect };
        Ok((current, report))
    }

    /// Canonical stationary execution: `stationary` is `G x K` (one FAN
    /// cluster per row), `streaming` is `K x S` (one streamed vector per
    /// step). `emit(group, step, partial)` accumulates output.
    ///
    /// Dispatches to the event-driven scheduler
    /// ([`SigmaSim::run_stationary_event`]) by default; fault-injected
    /// runs and configurations with [`SigmaConfig::lockstep`] set take the
    /// legacy tick loop ([`SigmaSim::run_stationary_lockstep`]). The two
    /// paths produce bitwise-identical results, stats, and traces —
    /// asserted per-run in tests and in CI via
    /// `perf_bench --lockstep-check`.
    fn run_stationary(
        &self,
        stationary: &SparseMatrix,
        streaming: &SparseMatrix,
        trace: Option<&mut Trace>,
        faults: Option<&mut FaultInjector<'_>>,
        cancel: Option<&CancelToken>,
        emit: impl FnMut(usize, usize, f32),
    ) -> Result<CycleStats, SigmaError> {
        if faults.is_some() || self.config.lockstep() {
            self.run_stationary_lockstep(stationary, streaming, trace, faults, cancel, emit)
        } else {
            self.run_stationary_event(stationary, streaming, trace, cancel, emit)
        }
    }

    /// The legacy lockstep tick loop: every Flex-DPE steps on every
    /// streaming cycle. Kept as the debug oracle for the event scheduler
    /// and as the only path supporting fault injection (faults are
    /// cycle-stamped per step, so batching would change their timing).
    ///
    /// With an armed injector, bitmap-word corruptions are applied to the
    /// streaming metadata *before* the controller plans (the controller
    /// then believes the corrupted occupancy, skipping values whose bits
    /// were cleared), and datapath faults fire inside each Flex-DPE step.
    fn run_stationary_lockstep(
        &self,
        stationary: &SparseMatrix,
        streaming: &SparseMatrix,
        mut trace: Option<&mut Trace>,
        mut faults: Option<&mut FaultInjector<'_>>,
        cancel: Option<&CancelToken>,
        mut emit: impl FnMut(usize, usize, f32),
    ) -> Result<CycleStats, SigmaError> {
        let pes = self.config.total_pes();
        let bw = self.config.input_bandwidth() as u64;
        let stream_bw = self.config.stream_bandwidth() as u64;
        let dpe = self.config.dpe_size();
        let steps = streaming.cols();

        // A corrupted copy of the streaming bitmap, when the plan says so.
        // The controller and the compressed-stream reads both consult the
        // corrupted metadata; the true values are untouched.
        let mut corrupted: Option<Bitmap> = None;
        if let Some(inj) = faults.as_deref_mut() {
            let events = inj.take_bitmap_corruptions(0);
            if !events.is_empty() {
                let mut bm = streaming.bitmap().clone();
                for (word, mask) in events {
                    if word < bm.word_count() {
                        bm.xor_word(word, mask);
                    }
                }
                corrupted = Some(bm);
            }
        }
        let stream_bitmap: &Bitmap = corrupted.as_ref().unwrap_or_else(|| streaming.bitmap());

        let plan = ControllerPlan::build_with_order(
            stationary,
            stream_bitmap,
            pes,
            self.config.packing_order(),
        );
        let stream_dense = streaming.to_dense();

        let mut stats = CycleStats { pes: pes as u64, ..CycleStats::default() };
        let mut engines: Vec<FlexDpe> = Vec::new();
        // Per-run scratch, reused across every fold and streaming step so
        // the steady-state loop stays allocation-free.
        let mut local_ids: Vec<Option<u32>> = vec![None; dpe];
        let mut step_out = DpeStep::default();
        // Controller-level telemetry: fold/mapping decisions. The mapped
        // total accumulates below; the drop count falls out at the end.
        self.telemetry.add(Counter::FoldsPlanned, plan.folds.len() as u64);
        // Sorted-run scratch for the multicast fan-out histogram: a Vec
        // sorted per fold instead of a hash map, so the observation order
        // is deterministic and the loop is allocation-free after warmup.
        let mut fanout_scratch: Vec<usize> = Vec::new();

        let mut prev_fold_stream = 0u64;
        for fold in &plan.folds {
            // Fold boundaries are the cancellation points: no stationary
            // state is in flight, so stopping here abandons no work the
            // caller could ever observe.
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(SigmaError::Cancelled);
            }
            let occupied = fold.occupied();
            stats.folds += 1;
            stats.mapped_nonzeros += occupied as u64;
            stats.occupied_slots += occupied as u64;
            let load = (occupied as u64).div_ceil(bw);
            let visible_load = if self.config.double_buffered() && stats.folds > 1 {
                // Overlaps the previous fold's streaming; only the
                // residue is visible.
                load.saturating_sub(prev_fold_stream)
            } else {
                load
            };
            stats.loading_cycles += visible_load;
            if let Some(t) = trace.as_deref_mut() {
                t.record(Phase::Load, stats.folds - 1, None, visible_load);
            }
            stats.sram_reads += occupied as u64;
            self.telemetry.add(Counter::SramStationaryReads, occupied as u64);
            if self.telemetry.is_enabled() {
                // Multicast fan-out distribution: how many multipliers each
                // streamed SRAM read of a contraction index feeds. Counted
                // as runs of the sorted contraction indices.
                fanout_scratch.clear();
                fanout_scratch.extend(fold.elements.iter().map(|e| e.contraction));
                fanout_scratch.sort_unstable();
                let mut i = 0;
                while i < fanout_scratch.len() {
                    let mut j = i + 1;
                    while j < fanout_scratch.len() && fanout_scratch[j] == fanout_scratch[i] {
                        j += 1;
                    }
                    self.telemetry.observe(Hist::MulticastFanout, (j - i) as u64);
                    i = j;
                }
            }
            let mut this_fold_stream = 0u64;

            // Load each active Flex-DPE with its slice of the fold
            // (Fig. 5 Step iv: unicast into the multiplier buffers).
            let active_dpes = occupied.div_ceil(dpe);
            while engines.len() < active_dpes {
                let mut unit = FlexDpe::new(dpe)?;
                unit.set_route_caching(self.config.route_cache());
                unit.set_telemetry(self.telemetry.clone());
                engines.push(unit);
            }
            for (d, unit) in engines.iter_mut().enumerate().take(active_dpes) {
                let lo = d * dpe;
                let hi = (lo + dpe).min(occupied);
                local_ids.fill(None);
                local_ids[..hi - lo].copy_from_slice(&fold.vec_ids[lo..hi]);
                unit.load(&fold.elements[lo..hi], &local_ids)?;
            }

            let mut last_step_drain = 0u64;
            for step in 0..steps {
                // Bandwidth: only the non-zero streaming values among this
                // fold's needed contraction indices are read and sent.
                let sends = fold
                    .distinct_contractions
                    .iter()
                    .filter(|&&k| stream_bitmap.get(k, step))
                    .count() as u64;
                let step_cycles = sends.div_ceil(stream_bw).max(1);
                stats.streaming_cycles += step_cycles;
                this_fold_stream += step_cycles;
                stats.sram_reads += sends;
                stats.issued_macs += occupied as u128;
                if sends == 0 {
                    // A dead step: no operand is streamed, but the cycle is
                    // still spent. The event scheduler fast-forwards these;
                    // the oracle executes them and counts them identically.
                    stats.idle_cycles_skipped += step_cycles;
                    self.telemetry.add(Counter::IdleCyclesSkipped, step_cycles);
                }
                self.telemetry.add(Counter::SramStreamingReads, sends);
                self.telemetry.observe(Hist::StreamStepCycles, step_cycles);
                if let Some(t) = trace.as_deref_mut() {
                    t.record(Phase::Stream, stats.folds - 1, Some(step), step_cycles);
                }

                // Multiply + reduce on each Flex-DPE.
                last_step_drain = 0;
                for (d, unit) in engines.iter_mut().enumerate().take(active_dpes) {
                    if let Some(inj) = faults.as_deref_mut() {
                        // The compressed stream is fetched per the (possibly
                        // corrupted) metadata: a cleared bit reads as zero.
                        let operand = |k: usize| {
                            if stream_bitmap.get(k, step) {
                                stream_dense.get(k, step)
                            } else {
                                0.0
                            }
                        };
                        let cycle = stats.total_cycles();
                        step_out = unit.step_faulted(&operand, inj, d, cycle)?;
                    } else {
                        unit.step_into(&|k: usize| stream_dense.get(k, step), &mut step_out)?;
                    }
                    stats.useful_macs += step_out.useful_macs as u128;
                    last_step_drain = last_step_drain.max(step_out.reduction.critical_cycles);
                    for s in &step_out.reduction.sums {
                        let group = fold.cluster_groups[s.vec_id as usize];
                        emit(group, step, s.value);
                    }
                }
            }
            // Table II add latency: the last wave's reduction must drain
            // before the next stationary fold loads.
            stats.add_cycles += last_step_drain;
            if let Some(t) = trace.as_deref_mut() {
                t.record(Phase::Drain, stats.folds - 1, None, last_step_drain);
            }
            prev_fold_stream = this_fold_stream;
        }
        // Surface the per-unit Benes route-cache effectiveness into the
        // run's stats (the engines are fresh per run, so these totals are
        // deterministic and independent of telemetry).
        for unit in &engines {
            stats.route_cache_hits += unit.route_cache().hits();
            stats.route_cache_misses += unit.route_cache().misses();
        }
        // Mapping decisions: stationary non-zeros the controller dropped
        // because their contraction row can never meet a streamed value.
        self.telemetry.add(
            Counter::StationaryDropped,
            (stationary.nnz() as u64).saturating_sub(stats.mapped_nonzeros),
        );
        Ok(stats)
    }

    /// Event-driven stationary execution: the default scheduler.
    ///
    /// Instead of ticking every Flex-DPE on every streaming cycle, each
    /// fold advances through a three-event chain on a deterministic
    /// [`EventQueue`] — `LoadFold` → `Stream` → `Drain` — and the cycle
    /// cursor jumps straight between interesting cycles:
    ///
    /// * **Per-fold send counts are batched word-level**: one walk over
    ///   the streaming bitmap's occupancy words
    ///   ([`Bitmap::row_iter_ones`]) yields every step's send count in
    ///   O(nnz), replacing the per-(contraction, step) bit probing of the
    ///   tick loop.
    /// * **Dead steps fast-forward**: a step with zero sends streams only
    ///   `+0.0` operands, every product is `±0.0`, and every FAN add and
    ///   output accumulation is a bitwise no-op (output cells can never
    ///   hold `-0.0`, and `x + ±0.0 == x` bitwise for every non-`-0.0`
    ///   `x`), so the datapath is skipped entirely and the cycle is
    ///   charged in bulk — surfacing as
    ///   [`CycleStats::idle_cycles_skipped`].
    /// * **Live steps replay the compiled FAN schedule**
    ///   ([`FlexDpe::step_compiled`]) over a contiguous column gather,
    ///   instead of re-deriving the reduction tree per wave.
    /// * **The drain is a next-event hint**: the fold's add latency is
    ///   [`FlexDpe::drain_cycles`] (the FAN's latency-until-quiescent, a
    ///   constant of the layout), not a per-tick countdown.
    ///
    /// Results, stats, and traces are bitwise-identical to
    /// [`SigmaSim::run_stationary_lockstep`]; telemetry batches to the
    /// exact same counter totals and histogram multisets.
    fn run_stationary_event(
        &self,
        stationary: &SparseMatrix,
        streaming: &SparseMatrix,
        mut trace: Option<&mut Trace>,
        cancel: Option<&CancelToken>,
        mut emit: impl FnMut(usize, usize, f32),
    ) -> Result<CycleStats, SigmaError> {
        let pes = self.config.total_pes();
        let bw = self.config.input_bandwidth() as u64;
        let stream_bw = self.config.stream_bandwidth() as u64;
        let dpe = self.config.dpe_size();
        let steps = streaming.cols();
        let kdim = streaming.rows();
        let stream_bitmap = streaming.bitmap();

        let plan = ControllerPlan::build_with_order(
            stationary,
            stream_bitmap,
            pes,
            self.config.packing_order(),
        );
        self.telemetry.add(Counter::FoldsPlanned, plan.folds.len() as u64);

        // Steps-major gather of the streaming matrix: the streamed column
        // of step `s` is the contiguous slice `stream_tr[s*k .. (s+1)*k]`,
        // so the hot loop indexes a dense slice instead of calling a
        // column-strided closure per operand.
        let mut stream_tr = vec![0.0f32; kdim * steps];
        for (r, c, v) in streaming.iter() {
            stream_tr[c * kdim + r] = v;
        }

        let mut stats = CycleStats { pes: pes as u64, ..CycleStats::default() };
        let mut engines: Vec<FlexDpe> = Vec::new();
        let mut local_ids: Vec<Option<u32>> = vec![None; dpe];
        let mut step_out = DpeStep::default();
        let mut fanout_scratch: Vec<usize> = Vec::new();
        // Per-step send counts for the current fold, recomputed word-level
        // per fold (see above), and the indices of the live (non-dead)
        // steps. Reused across folds.
        let mut sends_buf: Vec<u64> = vec![0; steps];
        let mut live_steps: Vec<u32> = Vec::with_capacity(steps);

        let mut queue = EventQueue::new();
        let mut prev_fold_stream = 0u64;
        let mut active_dpes = 0usize;
        let mut end_cycle = 0u64;
        if !plan.folds.is_empty() {
            queue.push(0, Event::LoadFold(0));
        }
        while let Some((cursor, event)) = queue.pop() {
            match event {
                Event::LoadFold(f) => {
                    // The same cancellation point as the lockstep oracle's
                    // fold-loop top: nothing is in flight before a load.
                    if cancel.is_some_and(CancelToken::is_cancelled) {
                        return Err(SigmaError::Cancelled);
                    }
                    let fold = &plan.folds[f];
                    let occupied = fold.occupied();
                    stats.folds += 1;
                    stats.mapped_nonzeros += occupied as u64;
                    stats.occupied_slots += occupied as u64;
                    let load = (occupied as u64).div_ceil(bw);
                    let visible_load = if self.config.double_buffered() && f > 0 {
                        load.saturating_sub(prev_fold_stream)
                    } else {
                        load
                    };
                    stats.loading_cycles += visible_load;
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(Phase::Load, f as u64, None, visible_load);
                    }
                    stats.sram_reads += occupied as u64;
                    self.telemetry.add(Counter::SramStationaryReads, occupied as u64);
                    if self.telemetry.is_enabled() {
                        fanout_scratch.clear();
                        fanout_scratch.extend(fold.elements.iter().map(|e| e.contraction));
                        fanout_scratch.sort_unstable();
                        let mut i = 0;
                        while i < fanout_scratch.len() {
                            let mut j = i + 1;
                            while j < fanout_scratch.len() && fanout_scratch[j] == fanout_scratch[i]
                            {
                                j += 1;
                            }
                            self.telemetry.observe(Hist::MulticastFanout, (j - i) as u64);
                            i = j;
                        }
                    }
                    active_dpes = occupied.div_ceil(dpe);
                    while engines.len() < active_dpes {
                        let mut unit = FlexDpe::new(dpe)?;
                        unit.set_route_caching(self.config.route_cache());
                        unit.set_telemetry(self.telemetry.clone());
                        engines.push(unit);
                    }
                    for (d, unit) in engines.iter_mut().enumerate().take(active_dpes) {
                        let lo = d * dpe;
                        let hi = (lo + dpe).min(occupied);
                        local_ids.fill(None);
                        local_ids[..hi - lo].copy_from_slice(&fold.vec_ids[lo..hi]);
                        unit.load(&fold.elements[lo..hi], &local_ids)?;
                    }
                    queue.push(cursor + visible_load, Event::Stream(f));
                }
                Event::Stream(f) => {
                    let fold = &plan.folds[f];
                    let occupied = fold.occupied();
                    // Word-level send counting: one pass over the occupancy
                    // words of this fold's contraction rows.
                    sends_buf.fill(0);
                    for &k in &fold.distinct_contractions {
                        for c in stream_bitmap.row_iter_ones(k) {
                            sends_buf[c] += 1;
                        }
                    }
                    // Pass 1 — per-step accounting in step order: cycle
                    // charges, trace records, and the dead-step
                    // fast-forward (every streamed operand of a dead step
                    // is +0.0, so the whole datapath is a bitwise no-op:
                    // charge the cycle, skip the work).
                    let mut fold_stream = 0u64;
                    let mut fold_sends = 0u64;
                    let mut dead_steps = 0u64;
                    live_steps.clear();
                    for (step, &sends) in sends_buf.iter().enumerate() {
                        let step_cycles = sends.div_ceil(stream_bw).max(1);
                        fold_stream += step_cycles;
                        if let Some(t) = trace.as_deref_mut() {
                            t.record(Phase::Stream, f as u64, Some(step), step_cycles);
                        }
                        if sends == 0 {
                            dead_steps += step_cycles;
                            continue;
                        }
                        fold_sends += sends;
                        self.telemetry.observe(Hist::StreamStepCycles, step_cycles);
                        live_steps.push(step as u32);
                    }
                    // Pass 2 — the datapath, unit-outer/step-inner so each
                    // unit's stationary state stays cache-resident across
                    // the whole fold. Per output cell the accumulation
                    // order is unchanged (fold-major, then unit-major:
                    // within a fold each cluster touches a cell at most
                    // once per step), so results stay bitwise identical to
                    // the step-outer lockstep loop.
                    let mut fold_useful = 0u64;
                    for unit in engines.iter_mut().take(active_dpes) {
                        for &step in &live_steps {
                            let step = step as usize;
                            let col = &stream_tr[step * kdim..step * kdim + kdim];
                            unit.step_compiled(col, &mut step_out)?;
                            fold_useful += step_out.useful_macs as u64;
                            for s in &step_out.reduction.sums {
                                let group = fold.cluster_groups[s.vec_id as usize];
                                emit(group, step, s.value);
                            }
                        }
                    }
                    stats.streaming_cycles += fold_stream;
                    stats.sram_reads += fold_sends;
                    stats.issued_macs += occupied as u128 * steps as u128;
                    stats.useful_macs += u128::from(fold_useful);
                    stats.idle_cycles_skipped += dead_steps;
                    self.telemetry.add(Counter::SramStreamingReads, fold_sends);
                    self.telemetry.add(Counter::IdleCyclesSkipped, dead_steps);
                    self.telemetry.add(Counter::UsefulMacs, fold_useful);
                    if self.telemetry.is_enabled() {
                        // Dead steps all cost exactly one cycle.
                        self.telemetry.observe_n(Hist::StreamStepCycles, 1, dead_steps);
                        for unit in engines.iter().take(active_dpes) {
                            unit.record_steps_telemetry(steps as u64);
                        }
                    }
                    prev_fold_stream = fold_stream;
                    queue.push(cursor + fold_stream, Event::Drain(f));
                }
                Event::Drain(f) => {
                    // The fold's add latency is the slowest unit's
                    // latency-until-quiescent — a constant of the loaded
                    // layout, so no per-tick countdown is needed.
                    let drain = if steps == 0 {
                        0
                    } else {
                        engines
                            .iter()
                            .take(active_dpes)
                            .map(FlexDpe::drain_cycles)
                            .max()
                            .unwrap_or(0)
                    };
                    stats.add_cycles += drain;
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(Phase::Drain, f as u64, None, drain);
                    }
                    end_cycle = cursor + drain;
                    if f + 1 < plan.folds.len() {
                        queue.push(end_cycle, Event::LoadFold(f + 1));
                    }
                }
            }
        }
        debug_assert_eq!(
            end_cycle,
            stats.total_cycles(),
            "event cursor and Table-II accounting must agree"
        );
        for unit in &engines {
            stats.route_cache_hits += unit.route_cache().hits();
            stats.route_cache_misses += unit.route_cache().misses();
        }
        self.telemetry.add(
            Counter::StationaryDropped,
            (stationary.nnz() as u64).saturating_sub(stats.mapped_nonzeros),
        );
        Ok(stats)
    }

    /// The No-Local-Reuse dataflow (Fig. 4e): only useful multiplication
    /// pairs stream; nothing is stationary. Pairs are grouped by output
    /// element into FAN clusters and packed into full-array waves.
    ///
    /// Fault support covers [`crate::fault::FaultSite::MultiplierOutput`]
    /// and [`crate::fault::FaultSite::FanAdder`]; NLR has no stationary
    /// metadata or per-slot Benes delivery to corrupt.
    fn run_no_local_reuse(
        &self,
        a: &SparseMatrix,
        b: &SparseMatrix,
        mut trace: Option<&mut Trace>,
        mut faults: Option<&mut FaultInjector<'_>>,
        cancel: Option<&CancelToken>,
    ) -> Result<GemmRun, SigmaError> {
        let pes = self.config.total_pes();
        let stream_bw = self.config.stream_bandwidth() as u64;
        let dpe = self.config.dpe_size();
        let (m, n) = (a.rows(), b.cols());
        let a_d = a.to_dense();
        let b_d = b.to_dense();

        // Enumerate useful pairs grouped by output (m, n).
        let mut pairs: Vec<(usize, usize, f32, f32)> = Vec::new();
        for i in 0..m {
            for j in 0..n {
                for k in 0..a.cols() {
                    let x = a_d.get(i, k);
                    let y = b_d.get(k, j);
                    if x != 0.0 && y != 0.0 {
                        pairs.push((i, j, x, y));
                    }
                }
            }
        }

        let mut out = Matrix::zeros(m, n);
        let mut stats = CycleStats { pes: pes as u64, ..CycleStats::default() };
        stats.useful_macs = pairs.len() as u128;
        stats.issued_macs = pairs.len() as u128;
        stats.mapped_nonzeros = 0;
        stats.occupied_slots = 0;
        self.telemetry.add(Counter::UsefulMacs, pairs.len() as u64);
        self.telemetry.add(Counter::IssuedMacs, pairs.len() as u64);

        // Per-run scratch, reused across all waves and chunks.
        let mut products = vec![0.0f32; dpe];
        let mut ids: Vec<Option<u32>> = vec![None; dpe];
        let mut cluster_outputs: Vec<(usize, usize)> = Vec::new();
        let mut fan_scratch = FanScratch::default();
        let mut red = FanReduction::default();

        for (w, wave) in pairs.chunks(pes).enumerate() {
            // Wave boundaries are NLR's fold boundaries.
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(SigmaError::Cancelled);
            }
            stats.folds += 1;
            // Two operands per multiplier must be distributed.
            let stream_cycles = (2 * wave.len() as u64).div_ceil(stream_bw).max(1);
            stats.streaming_cycles += stream_cycles;
            stats.sram_reads += 2 * wave.len() as u64;
            self.telemetry.add(Counter::SramStreamingReads, 2 * wave.len() as u64);
            self.telemetry.add(Counter::StreamSteps, 1);
            if let Some(t) = trace.as_deref_mut() {
                t.record(Phase::Stream, w as u64, Some(0), stream_cycles);
            }

            let mut drain = 0u64;
            for (d, chunk) in wave.chunks(dpe).enumerate() {
                products.fill(0.0);
                ids.fill(None);
                cluster_outputs.clear();
                for (slot, &(i, j, x, y)) in chunk.iter().enumerate() {
                    if cluster_outputs.last() != Some(&(i, j)) {
                        cluster_outputs.push((i, j));
                    }
                    #[allow(clippy::cast_possible_truncation)]
                    let cid = (cluster_outputs.len() - 1) as u32;
                    products[slot] = x * y;
                    ids[slot] = Some(cid);
                }
                let adder_faults = if let Some(inj) = faults.as_deref_mut() {
                    let cycle = stats.total_cycles();
                    for (slot, p) in products.iter_mut().enumerate().take(chunk.len()) {
                        *p = inj.apply_multiplier(d, slot, *p, cycle);
                    }
                    inj.adder_faults(d, cycle)
                } else {
                    Vec::new()
                };
                self.fan
                    .reduce_into(&products, &ids, &adder_faults, &mut fan_scratch, &mut red)
                    .map_err(|e| {
                        SigmaError::Internal(format!("NLR fan reduction rejected: {e}"))
                    })?;
                drain = drain.max(red.critical_cycles);
                self.telemetry.add(Counter::FanAdds, red.adds_performed as u64);
                self.telemetry.add(Counter::FanClusterSums, red.sums.len() as u64);
                for s in &red.sums {
                    let (i, j) = cluster_outputs[s.vec_id as usize];
                    out.set(i, j, out.get(i, j) + s.value);
                }
            }
            stats.add_cycles += drain;
            if let Some(t) = trace.as_deref_mut() {
                t.record(Phase::Drain, w as u64, None, drain);
            }
        }

        Ok(GemmRun { result: out, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::gen::{sparse_uniform, Density};

    fn cfg(dpes: usize, size: usize, bw: usize, df: Dataflow) -> SigmaSim {
        SigmaSim::new(SigmaConfig::new(dpes, size, bw, df).unwrap()).unwrap()
    }

    fn check_correct(sim: &SigmaSim, m: usize, k: usize, n: usize, da: f64, db: f64, seed: u64) {
        let a = sparse_uniform(m, k, Density::new(da).unwrap(), seed);
        let b = sparse_uniform(k, n, Density::new(db).unwrap(), seed + 1000);
        let run = sim.run_gemm(&a, &b).unwrap();
        let reference = a.to_dense().matmul(&b.to_dense());
        let tol = 1e-3 * k as f32;
        assert!(
            run.result.approx_eq(&reference, tol),
            "mismatch {} (max diff {})",
            sim.config().dataflow(),
            run.result.max_abs_diff(&reference)
        );
    }

    #[test]
    fn input_stationary_correct_across_densities() {
        let sim = cfg(4, 8, 8, Dataflow::InputStationary);
        for (i, d) in [0.0, 0.1, 0.3, 0.5, 0.8, 1.0].iter().enumerate() {
            check_correct(&sim, 7, 12, 5, *d, 0.6, 42 + i as u64);
        }
    }

    #[test]
    fn event_and_lockstep_paths_are_bitwise_identical() {
        // The event scheduler must be indistinguishable from the tick-loop
        // oracle: same outputs (bitwise), same stats (including the new
        // idle counter — the oracle executes dead steps, the scheduler
        // skips them, both charge them), same trace event sequence.
        for df in [Dataflow::WeightStationary, Dataflow::InputStationary] {
            for (i, &(da, db)) in
                [(0.05, 0.1), (0.3, 0.6), (1.0, 1.0), (0.5, 0.02)].iter().enumerate()
            {
                let base = SigmaConfig::new(4, 8, 8, df).unwrap();
                for cfg in [base, base.with_double_buffering(true)] {
                    let event = SigmaSim::new(cfg).unwrap();
                    let lockstep = SigmaSim::new(cfg.with_lockstep(true)).unwrap();
                    let seed = 500 + i as u64;
                    let a = sparse_uniform(9, 14, Density::new(da).unwrap(), seed);
                    let b = sparse_uniform(14, 11, Density::new(db).unwrap(), seed + 1);
                    let (run_e, trace_e) = event.run_gemm_traced(&a, &b).unwrap();
                    let (run_l, trace_l) = lockstep.run_gemm_traced(&a, &b).unwrap();
                    assert_eq!(run_e.stats, run_l.stats, "{df} densities ({da},{db})");
                    assert_eq!(trace_e, trace_l, "{df} densities ({da},{db})");
                    assert_eq!(run_e.result.rows(), run_l.result.rows());
                    for (x, y) in run_e.result.as_slice().iter().zip(run_l.result.as_slice()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{df} densities ({da},{db})");
                    }
                    if da <= 0.05 || db <= 0.05 {
                        assert!(
                            run_e.stats.idle_cycles_skipped > 0,
                            "very sparse runs must have dead cycles to skip"
                        );
                    }
                    assert!(run_e.stats.idle_cycles_skipped <= run_e.stats.streaming_cycles);
                }
            }
        }
    }

    #[test]
    fn fault_injection_parity_between_event_and_lockstep_configs() {
        // Proptest-style sweep: seeds drive operands and fault sites.
        // The contract under test: a faulted run under the event-driven
        // config is indistinguishable from the lockstep oracle —
        // identical injected/detected/corrected/escaped counters,
        // identical fired-fault list, and a bitwise-identical result.
        // (Faulted runs deliberately route through the tick loop so
        // injection semantics cannot drift between schedulers; this test
        // pins that routing.)
        use crate::fault::{FaultKind, FaultSite};
        let policy = RecoveryPolicy::default();
        for seed in 0..16u64 {
            let s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x1234_5678);
            let m = 6 + (s % 7) as usize;
            let k = 8 + ((s >> 8) % 9) as usize;
            let n = 5 + ((s >> 16) % 8) as usize;
            let da = 0.2 + 0.1 * ((s >> 24) % 8) as f64;
            let db = 0.2 + 0.1 * ((s >> 32) % 8) as f64;
            let a = sparse_uniform(m, k, Density::new(da).unwrap(), s);
            let b = sparse_uniform(k, n, Density::new(db).unwrap(), s ^ 0xABCD);
            let dpe = (s >> 40) as usize % 4;
            let slot = (s >> 44) as usize % 8;
            let bit = 20 + ((s >> 48) % 11) as u32;
            let plan = FaultPlan::single(
                FaultSite::MultiplierOutput { dpe, slot },
                FaultKind::TransientFlip { bit },
            );
            for df in [Dataflow::WeightStationary, Dataflow::InputStationary] {
                let base = SigmaConfig::new(4, 8, 8, df).unwrap();
                let event = SigmaSim::new(base).unwrap();
                let lockstep = SigmaSim::new(base.with_lockstep(true)).unwrap();
                let (run_e, rep_e) = event.run_gemm_checked(&a, &b, &plan, &policy).unwrap();
                let (run_l, rep_l) = lockstep.run_gemm_checked(&a, &b, &plan, &policy).unwrap();
                assert_eq!(rep_e.counters, rep_l.counters, "seed {seed} {df}");
                assert_eq!(rep_e.fired, rep_l.fired, "seed {seed} {df}");
                assert_eq!(rep_e.numeric_effect, rep_l.numeric_effect, "seed {seed} {df}");
                assert_eq!(rep_e.attempts, rep_l.attempts, "seed {seed} {df}");
                for (x, y) in run_e.result.as_slice().iter().zip(run_l.result.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "seed {seed} {df}");
                }
            }
        }
    }

    #[test]
    fn cancellation_stops_at_fold_boundaries_on_every_path() {
        // A pre-cancelled token must stop the run before any fold on the
        // event path, the lockstep oracle, and NLR alike.
        let a = sparse_uniform(12, 20, Density::new(0.6).unwrap(), 31);
        let b = sparse_uniform(20, 9, Density::new(0.6).unwrap(), 32);
        for df in [Dataflow::WeightStationary, Dataflow::InputStationary, Dataflow::NoLocalReuse] {
            let base = SigmaConfig::new(2, 8, 8, df).unwrap();
            for cfg in [base, base.with_lockstep(true)] {
                let sim = SigmaSim::new(cfg).unwrap();
                let cancelled = CancelToken::new();
                cancelled.cancel();
                assert_eq!(
                    sim.run_gemm_cancellable(&a, &b, &cancelled).unwrap_err(),
                    SigmaError::Cancelled,
                    "{df}"
                );
            }
        }
    }

    #[test]
    fn uncancelled_run_is_byte_identical_to_plain_run() {
        let a = sparse_uniform(10, 14, Density::new(0.4).unwrap(), 41);
        let b = sparse_uniform(14, 7, Density::new(0.7).unwrap(), 42);
        for df in [Dataflow::WeightStationary, Dataflow::InputStationary, Dataflow::NoLocalReuse] {
            let sim = cfg(2, 8, 8, df);
            let token = CancelToken::new();
            let with_token = sim.run_gemm_cancellable(&a, &b, &token).unwrap();
            let plain = sim.run_gemm(&a, &b).unwrap();
            assert_eq!(with_token.stats, plain.stats, "{df}");
            for (x, y) in with_token.result.as_slice().iter().zip(plain.result.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{df}");
            }
        }
    }

    #[test]
    fn weight_stationary_correct_across_densities() {
        let sim = cfg(4, 8, 8, Dataflow::WeightStationary);
        for (i, d) in [0.0, 0.2, 0.5, 0.9, 1.0].iter().enumerate() {
            check_correct(&sim, 6, 10, 9, 0.7, *d, 99 + i as u64);
        }
    }

    #[test]
    fn no_local_reuse_correct() {
        let sim = cfg(2, 8, 16, Dataflow::NoLocalReuse);
        check_correct(&sim, 5, 9, 6, 0.4, 0.5, 7);
        check_correct(&sim, 3, 4, 3, 1.0, 1.0, 8);
    }

    #[test]
    fn irregular_shapes_correct() {
        let sim = cfg(2, 16, 16, Dataflow::InputStationary);
        check_correct(&sim, 1, 40, 3, 0.5, 0.5, 11); // tall-skinny contraction
        check_correct(&sim, 17, 2, 23, 0.8, 0.8, 12); // fat-short
    }

    #[test]
    fn dense_regular_full_utilization() {
        let sim = cfg(2, 8, 16, Dataflow::InputStationary);
        let a = sparse_uniform(4, 4, Density::DENSE, 1);
        let b = sparse_uniform(4, 4, Density::DENSE, 2);
        let run = sim.run_gemm(&a, &b).unwrap();
        assert_eq!(run.stats.stationary_utilization(), 1.0);
        assert_eq!(run.stats.folds, 1);
        assert_eq!(run.stats.useful_macs, 64);
        assert_eq!(run.stats.issued_macs, 64);
        assert_eq!(run.stats.compute_efficiency(), 1.0);
    }

    #[test]
    fn sparse_stationary_maps_only_nonzeros() {
        let sim = cfg(2, 8, 16, Dataflow::InputStationary);
        let a = sparse_uniform(8, 8, Density::new(0.25).unwrap(), 3);
        let b = sparse_uniform(8, 8, Density::DENSE, 4);
        let run = sim.run_gemm(&a, &b).unwrap();
        // 16 non-zeros on 16 PEs: one fold, 100% stationary utilization.
        assert_eq!(run.stats.stationary_utilization(), 1.0);
        assert_eq!(run.stats.mapped_nonzeros, 16);
        assert_eq!(run.stats.folds, 1);
    }

    #[test]
    fn streaming_sparsity_limits_compute_efficiency() {
        let sim = cfg(2, 8, 1024, Dataflow::InputStationary);
        let a = sparse_uniform(4, 4, Density::DENSE, 5);
        let b = sparse_uniform(4, 64, Density::new(0.3).unwrap(), 6);
        let run = sim.run_gemm(&a, &b).unwrap();
        let eff = run.stats.compute_efficiency();
        assert!((0.15..=0.45).contains(&eff), "compute efficiency {eff} should track ~0.3");
    }

    #[test]
    fn folding_when_stationary_exceeds_pes() {
        let sim = cfg(2, 4, 8, Dataflow::InputStationary);
        let a = sparse_uniform(8, 8, Density::DENSE, 7); // 64 nnz on 8 PEs
        let b = sparse_uniform(8, 4, Density::DENSE, 8);
        let run = sim.run_gemm(&a, &b).unwrap();
        assert_eq!(run.stats.folds, 8);
        let reference = a.to_dense().matmul(&b.to_dense());
        assert!(run.result.approx_eq(&reference, 1e-2));
    }

    #[test]
    fn bandwidth_serializes_loading() {
        let wide = cfg(2, 8, 16, Dataflow::InputStationary);
        let narrow = cfg(2, 8, 2, Dataflow::InputStationary);
        let a = sparse_uniform(4, 4, Density::DENSE, 9);
        let b = sparse_uniform(4, 4, Density::DENSE, 10);
        let fast = wide.run_gemm(&a, &b).unwrap().stats;
        let slow = narrow.run_gemm(&a, &b).unwrap().stats;
        assert!(slow.loading_cycles > fast.loading_cycles);
        assert!(slow.total_cycles() > fast.total_cycles());
    }

    #[test]
    fn best_stationary_picks_lower_latency() {
        let sim = cfg(2, 8, 8, Dataflow::WeightStationary);
        // Very sparse A, dense B: keeping the sparser matrix stationary
        // (input-stationary) needs fewer folds.
        let a = sparse_uniform(32, 16, Density::new(0.1).unwrap(), 13);
        let b = sparse_uniform(16, 32, Density::DENSE, 14);
        let (df, run) = sim.run_best_stationary(&a, &b).unwrap();
        let ws = cfg(2, 8, 8, Dataflow::WeightStationary).run_gemm(&a, &b).unwrap();
        let is = cfg(2, 8, 8, Dataflow::InputStationary).run_gemm(&a, &b).unwrap();
        let best = ws.stats.total_cycles().min(is.stats.total_cycles());
        assert_eq!(run.stats.total_cycles(), best);
        assert!(df == Dataflow::WeightStationary || df == Dataflow::InputStationary);
    }

    #[test]
    fn contraction_major_packing_is_correct_and_cuts_sram_traffic() {
        use crate::controller::PackingOrder;
        // Narrow stream bandwidth: per-step sends dominate streaming.
        let base = SigmaConfig::new(2, 16, 4, Dataflow::InputStationary).unwrap();
        let gm = SigmaSim::new(base).unwrap();
        let cm = SigmaSim::new(base.with_packing_order(PackingOrder::ContractionMajor)).unwrap();
        let a = sparse_uniform(64, 16, Density::DENSE, 71); // 1024 nnz, 32 folds
        let b = sparse_uniform(16, 12, Density::DENSE, 72);
        let g = gm.run_gemm(&a, &b).unwrap();
        let c = cm.run_gemm(&a, &b).unwrap();
        let reference = a.to_dense().matmul(&b.to_dense());
        assert!(g.result.approx_eq(&reference, 1e-2));
        assert!(c.result.approx_eq(&reference, 1e-2));
        // Same folds, but contraction-major folds hold fewer distinct k,
        // so each streamed value multicasts wider: fewer SRAM reads and
        // fewer streaming cycles at narrow bandwidth.
        assert_eq!(g.stats.folds, c.stats.folds);
        assert!(
            c.stats.sram_reads < g.stats.sram_reads,
            "cm {} vs gm {}",
            c.stats.sram_reads,
            g.stats.sram_reads
        );
        assert!(c.stats.streaming_cycles <= g.stats.streaming_cycles);
    }

    #[test]
    fn trace_is_consistent_with_stats() {
        let sim = cfg(2, 8, 4, Dataflow::InputStationary);
        let a = sparse_uniform(10, 12, Density::new(0.6).unwrap(), 61);
        let b = sparse_uniform(12, 7, Density::new(0.5).unwrap(), 62);
        let (run, trace) = sim.run_gemm_traced(&a, &b).unwrap();
        assert!(trace.consistent_with(&run.stats), "trace:\n{}", trace.fold_summary());
        // Traced and untraced runs are identical.
        let plain = sim.run_gemm(&a, &b).unwrap();
        assert_eq!(plain, run);
        // One load + one drain per fold, `steps` stream events per fold.
        let folds = run.stats.folds as usize;
        let loads = trace.events().iter().filter(|e| e.phase == crate::trace::Phase::Load).count();
        assert_eq!(loads, folds);
        let streams =
            trace.events().iter().filter(|e| e.phase == crate::trace::Phase::Stream).count();
        assert_eq!(streams, folds * 7);
    }

    #[test]
    fn double_buffering_hides_loads_without_changing_results() {
        let base = SigmaConfig::new(2, 4, 2, Dataflow::InputStationary).unwrap();
        let plain = SigmaSim::new(base).unwrap();
        let buffered = SigmaSim::new(base.with_double_buffering(true)).unwrap();
        // Many folds (64 nnz on 8 PEs) with slow loading (bw 2).
        let a = sparse_uniform(8, 8, Density::DENSE, 31);
        let b = sparse_uniform(8, 16, Density::DENSE, 32);
        let p = plain.run_gemm(&a, &b).unwrap();
        let d = buffered.run_gemm(&a, &b).unwrap();
        assert_eq!(p.result, d.result, "overlap must not change numerics");
        assert!(
            d.stats.loading_cycles < p.stats.loading_cycles,
            "buffered {} vs plain {}",
            d.stats.loading_cycles,
            p.stats.loading_cycles
        );
        assert_eq!(p.stats.streaming_cycles, d.stats.streaming_cycles);
        // Analytic model agrees directionally.
        use crate::model::{estimate, GemmProblem};
        let prob = GemmProblem::dense(sigma_matrix::GemmShape::new(8, 16, 8));
        let em = estimate(&base, &prob);
        let ed = estimate(&base.with_double_buffering(true), &prob);
        assert!(ed.loading_cycles < em.loading_cycles);
    }

    #[test]
    fn backward_pass_gemms_match_reference() {
        let sim = cfg(2, 8, 16, Dataflow::InputStationary);
        // dW = X^T dY with X: K x M-shaped storage (rows shared).
        let x = sparse_uniform(10, 6, Density::new(0.6).unwrap(), 21);
        let dy = sparse_uniform(10, 7, Density::new(0.6).unwrap(), 22);
        let run = sim.run_gemm_at(&x, &dy).unwrap();
        let reference = x.to_dense().matmul_at(&dy.to_dense());
        assert!(run.result.approx_eq(&reference, 1e-3));

        // dX = dY W^T with shared columns.
        let dy2 = sparse_uniform(5, 9, Density::new(0.7).unwrap(), 23);
        let w = sparse_uniform(8, 9, Density::new(0.7).unwrap(), 24);
        let run2 = sim.run_gemm_bt(&dy2, &w).unwrap();
        let reference2 = dy2.to_dense().matmul_bt(&w.to_dense());
        assert!(run2.result.approx_eq(&reference2, 1e-3));
    }

    #[test]
    fn backward_pass_dimension_checks() {
        let sim = cfg(2, 8, 16, Dataflow::InputStationary);
        let a = sparse_uniform(4, 5, Density::DENSE, 1);
        let b = sparse_uniform(6, 5, Density::DENSE, 2);
        assert!(sim.run_gemm_at(&a, &b).is_err()); // rows 4 vs 6
        assert!(sim.run_gemm_bt(&a, &b).is_ok()); // cols 5 == 5
        let c = sparse_uniform(6, 7, Density::DENSE, 3);
        assert!(sim.run_gemm_bt(&a, &c).is_err()); // cols 5 vs 7
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let sim = cfg(2, 8, 8, Dataflow::InputStationary);
        let a = sparse_uniform(4, 5, Density::DENSE, 1);
        let b = sparse_uniform(6, 4, Density::DENSE, 2);
        assert_eq!(
            sim.run_gemm(&a, &b).unwrap_err(),
            SigmaError::DimensionMismatch { k_a: 5, k_b: 6 }
        );
    }

    #[test]
    fn zero_matrix_yields_zero_result_and_no_folds() {
        let sim = cfg(2, 8, 8, Dataflow::InputStationary);
        let a = sparse_uniform(4, 4, Density::new(0.0).unwrap(), 1);
        let b = sparse_uniform(4, 4, Density::DENSE, 2);
        let run = sim.run_gemm(&a, &b).unwrap();
        assert_eq!(run.result, Matrix::zeros(4, 4));
        assert_eq!(run.stats.folds, 0);
        assert_eq!(run.stats.total_cycles(), 0);
    }

    #[test]
    fn no_local_reuse_has_no_loading() {
        let sim = cfg(2, 8, 8, Dataflow::NoLocalReuse);
        let a = sparse_uniform(6, 6, Density::new(0.5).unwrap(), 3);
        let b = sparse_uniform(6, 6, Density::new(0.5).unwrap(), 4);
        let run = sim.run_gemm(&a, &b).unwrap();
        assert_eq!(run.stats.loading_cycles, 0);
        assert_eq!(run.stats.useful_macs, run.stats.issued_macs);
    }

    #[test]
    fn non_finite_inputs_rejected() {
        let sim = cfg(2, 8, 8, Dataflow::InputStationary);
        let mut bad = Matrix::zeros(4, 4);
        bad.set(1, 2, f32::NAN);
        let a = SparseMatrix::from_dense(&bad);
        let b = sparse_uniform(4, 4, Density::DENSE, 2);
        assert_eq!(sim.run_gemm(&a, &b).unwrap_err(), SigmaError::NonFiniteInput { operand: "A" });
        let mut inf = Matrix::zeros(4, 4);
        inf.set(0, 0, f32::INFINITY);
        let b_bad = SparseMatrix::from_dense(&inf);
        let good = sparse_uniform(4, 4, Density::DENSE, 3);
        assert_eq!(
            sim.run_gemm(&good, &b_bad).unwrap_err(),
            SigmaError::NonFiniteInput { operand: "B" }
        );
    }

    fn fault_fixture(df: Dataflow) -> (SigmaSim, SparseMatrix, SparseMatrix) {
        let sim = cfg(2, 8, 16, df);
        let a = sparse_uniform(10, 12, Density::new(0.7).unwrap(), 51);
        let b = sparse_uniform(12, 9, Density::new(0.8).unwrap(), 52);
        (sim, a, b)
    }

    #[test]
    fn empty_plan_is_byte_identical() {
        for df in [Dataflow::InputStationary, Dataflow::WeightStationary, Dataflow::NoLocalReuse] {
            let (sim, a, b) = fault_fixture(df);
            let plain = sim.run_gemm(&a, &b).unwrap();
            let (faulted, report) = sim.run_gemm_with_faults(&a, &b, &FaultPlan::none()).unwrap();
            assert_eq!(plain, faulted, "{df}");
            assert!(report.fired.is_empty());
        }
    }

    #[test]
    fn transient_flip_is_detected_and_recovered() {
        let (sim, a, b) = fault_fixture(Dataflow::InputStationary);
        let clean = sim.run_gemm(&a, &b).unwrap();
        // Flip an exponent bit of the first multiplier's output: a large,
        // detectable corruption.
        let plan = FaultPlan::single(
            crate::fault::FaultSite::MultiplierOutput { dpe: 0, slot: 0 },
            crate::fault::FaultKind::TransientFlip { bit: 26 },
        );
        let (run, report) =
            sim.run_gemm_checked(&a, &b, &plan, &RecoveryPolicy::default()).unwrap();
        assert_eq!(report.counters.injected, 1);
        assert!(report.counters.detected >= 1, "report: {report:?}");
        assert!(report.counters.corrected >= 1, "report: {report:?}");
        assert_eq!(report.counters.escaped, 0);
        assert!(report.numeric_effect);
        // Recovery restored the fault-free result (the subtracted residual
        // is itself a float estimate, so equality holds to the ABFT
        // tolerance, not bitwise).
        let tol = sigma_matrix::abft::residual_tolerance(10, 9, 12);
        assert!(run.result.approx_eq(&clean.result, tol));
        assert_eq!(run.stats.faults_corrected, report.counters.corrected);
    }

    #[test]
    fn stuck_adder_exhausts_recompute_and_escapes() {
        let (sim, a, b) = fault_fixture(Dataflow::InputStationary);
        // A persistent sign-stuck adder near the FAN root corrupts a whole
        // cluster every cycle: multi-site, uncorrectable, survives
        // recompute.
        let plan = FaultPlan::single(
            crate::fault::FaultSite::FanAdder { dpe: 0, adder: 4 },
            crate::fault::FaultKind::StuckBit {
                bit: 31,
                level: sigma_interconnect::StuckLevel::One,
            },
        );
        let policy = RecoveryPolicy { max_recomputes: 1, tolerance: None };
        let (run, report) = sim.run_gemm_checked(&a, &b, &plan, &policy).unwrap();
        assert!(report.counters.detected >= 1, "report: {report:?}");
        assert_eq!(report.counters.escaped, 1, "report: {report:?}");
        assert_eq!(report.attempts, 2); // initial + 1 recompute
        assert_eq!(run.stats.faults_escaped, 1);
    }

    #[test]
    fn bitmap_corruption_perturbs_the_plan() {
        let (sim, a, b) = fault_fixture(Dataflow::InputStationary);
        let clean = sim.run_gemm(&a, &b).unwrap();
        // Clear/flip the first metadata word of the streaming operand:
        // the controller drops (or invents) streamed values.
        let plan = FaultPlan::single(
            crate::fault::FaultSite::BitmapWord { word: 0 },
            crate::fault::FaultKind::CorruptWord { mask: u64::MAX },
        );
        let (run, report) = sim.run_gemm_with_faults(&a, &b, &plan).unwrap();
        assert_eq!(report.fired.len(), 1);
        assert!(
            run.result.max_abs_diff(&clean.result) > 0.0,
            "flipping a dense streaming word must change the result"
        );
    }

    #[test]
    fn dropped_port_fires_with_site_and_cycle() {
        let (sim, a, b) = fault_fixture(Dataflow::WeightStationary);
        let plan = FaultPlan::single(
            crate::fault::FaultSite::BenesPort { dpe: 0, port: 2 },
            crate::fault::FaultKind::DroppedPort,
        );
        let (_, report) = sim.run_gemm_with_faults(&a, &b, &plan).unwrap();
        assert_eq!(report.fired.len(), 1);
        assert_eq!(report.fired[0].site, crate::fault::FaultSite::BenesPort { dpe: 0, port: 2 });
    }

    #[test]
    fn checked_run_without_faults_is_clean_and_uncounted() {
        let (sim, a, b) = fault_fixture(Dataflow::InputStationary);
        let (run, report) =
            sim.run_gemm_checked(&a, &b, &FaultPlan::none(), &RecoveryPolicy::default()).unwrap();
        assert_eq!(report.counters, crate::fault::FaultCounters::default());
        assert_eq!(report.attempts, 1);
        assert!(!report.numeric_effect);
        assert_eq!(run.result, sim.run_gemm(&a, &b).unwrap().result);
        assert_eq!(run.stats.faults_injected, 0);
    }

    #[test]
    fn route_cache_stats_surface_in_cycle_stats() {
        let sim = cfg(2, 4, 8, Dataflow::InputStationary);
        let a = sparse_uniform(8, 8, Density::DENSE, 7); // 64 nnz on 8 PEs: 8 folds
        let b = sparse_uniform(8, 4, Density::DENSE, 8);
        let run = sim.run_gemm(&a, &b).unwrap();
        assert!(run.stats.route_cache_misses > 0);
        assert!(run.stats.route_cache_hits > 0, "repeated full-prefix loads must hit");
        // Caching off: every load routes cold, results identical.
        let cold = SigmaSim::new(sim.config().with_route_cache(false)).unwrap();
        let run2 = cold.run_gemm(&a, &b).unwrap();
        assert_eq!(run2.stats.route_cache_hits, 0);
        assert!(run2.stats.route_cache_misses >= run.stats.route_cache_misses);
        assert_eq!(run.result, run2.result);
        assert_eq!(run.stats.total_cycles(), run2.stats.total_cycles());
    }

    #[test]
    fn telemetry_does_not_change_results_and_agrees_with_stats() {
        let base = SigmaConfig::new(2, 8, 16, Dataflow::InputStationary).unwrap();
        let plain = SigmaSim::new(base).unwrap();
        let tele = SigmaSim::new(base.with_telemetry(true)).unwrap();
        let a = sparse_uniform(10, 12, Density::new(0.6).unwrap(), 61);
        let b = sparse_uniform(12, 7, Density::new(0.5).unwrap(), 62);
        let p = plain.run_gemm(&a, &b).unwrap();
        let t = tele.run_gemm(&a, &b).unwrap();
        assert_eq!(p, t, "telemetry is observational only");
        assert!(!plain.telemetry_handle().snapshot().enabled);
        let snap = tele.telemetry_handle().snapshot();
        assert!(snap.enabled);
        // The counters recompose the CycleStats accounting exactly.
        assert_eq!(
            snap.counter("sram_stationary_reads").unwrap()
                + snap.counter("sram_streaming_reads").unwrap(),
            t.stats.sram_reads
        );
        assert_eq!(snap.counter("route_cache_hits").unwrap(), t.stats.route_cache_hits);
        assert_eq!(snap.counter("route_cache_misses").unwrap(), t.stats.route_cache_misses);
        assert_eq!(snap.counter("folds_planned").unwrap(), t.stats.folds);
        assert_eq!(u128::from(snap.counter("useful_macs").unwrap()), t.stats.useful_macs);
        assert_eq!(u128::from(snap.counter("issued_macs").unwrap()), t.stats.issued_macs);
        assert!(snap.hist("multicast_fanout").unwrap().count > 0);
        assert!(snap.hist("stream_step_cycles").unwrap().count > 0);
        assert!(snap.hist("multiplier_occupancy_pct").unwrap().max <= 100);
    }

    #[test]
    fn no_local_reuse_bandwidth_serialization() {
        // NLR needs 2 operands per multiplier: with bw == pes it takes ~2x
        // the streaming cycles of the pair count / pes.
        let sim = cfg(2, 4, 8, Dataflow::NoLocalReuse);
        let a = sparse_uniform(8, 8, Density::DENSE, 5);
        let b = sparse_uniform(8, 8, Density::DENSE, 6);
        let run = sim.run_gemm(&a, &b).unwrap();
        let pairs = 8u64 * 8 * 8;
        assert_eq!(run.stats.streaming_cycles, 2 * pairs / 8);
    }
}
