//! The inter-Flex-DPE NoC (Sec. IV-B): simple switches at each Flex-DPE
//! intersection, connected in a 2-D mesh, statically configured when a
//! GEMM is mapped.
//!
//! Within a Flex-DPU the switches forward data across the member
//! Flex-DPEs like a multicast bus; across Flex-DPUs they forward
//! hop-by-hop like a conventional (but statically routed) mesh. There is
//! no dynamic routing or flow control — configuration happens once per
//! mapping, which is what keeps the switches tiny.

use std::ops::Range;

/// Traffic accounting for NoC operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NocStats {
    /// Link traversals consumed.
    pub hops: u64,
    /// Cycles of serialization on the configured path (one word per link
    /// per cycle).
    pub cycles: u64,
    /// Switches whose static configuration was (re)written.
    pub switches_configured: u64,
}

impl NocStats {
    /// Combines two accounting records.
    #[must_use]
    pub fn merged(&self, other: &NocStats) -> NocStats {
        NocStats {
            hops: self.hops + other.hops,
            cycles: self.cycles.max(other.cycles),
            switches_configured: self.switches_configured + other.switches_configured,
        }
    }
}

/// A 2-D mesh of per-Flex-DPE switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshNoc {
    dpes: usize,
    cols: usize,
    /// Words per link per cycle (design-time parameter, Sec. IV-B).
    bandwidth: usize,
}

impl MeshNoc {
    /// Creates a mesh for `dpes` Flex-DPEs with the given per-link
    /// bandwidth (words/cycle), arranged in a near-square grid.
    ///
    /// # Panics
    ///
    /// Panics if `dpes == 0` or `bandwidth == 0`.
    #[must_use]
    pub fn new(dpes: usize, bandwidth: usize) -> Self {
        assert!(dpes > 0, "mesh needs at least one DPE");
        assert!(bandwidth > 0, "link bandwidth must be non-zero");
        let cols = (dpes as f64).sqrt().ceil() as usize;
        Self { dpes, cols, bandwidth }
    }

    /// Number of Flex-DPEs (switches).
    #[must_use]
    pub fn dpes(&self) -> usize {
        self.dpes
    }

    /// Grid coordinates of a Flex-DPE's switch.
    ///
    /// # Panics
    ///
    /// Panics if `dpe >= dpes`.
    #[must_use]
    pub fn coords(&self, dpe: usize) -> (usize, usize) {
        assert!(dpe < self.dpes, "dpe {dpe} out of range");
        (dpe % self.cols, dpe / self.cols)
    }

    /// Manhattan hop distance between two Flex-DPEs.
    #[must_use]
    pub fn hop_distance(&self, a: usize, b: usize) -> u64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// Statically configures a contiguous DPU: every member switch is
    /// written once.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the mesh.
    #[must_use]
    pub fn configure_dpu(&self, dpu: &Range<usize>) -> NocStats {
        assert!(dpu.end <= self.dpes, "DPU range exceeds mesh");
        NocStats { hops: 0, cycles: 0, switches_configured: dpu.len() as u64 }
    }

    /// Multicasts `words` from the DPU's first member to every member —
    /// the bus-like forwarding of Sec. IV-B. The chain is pipelined: the
    /// words enter once and ripple through the members, so serialization
    /// is `ceil(words / bandwidth)` cycles plus the chain fill.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or exceeds the mesh.
    #[must_use]
    pub fn multicast_within_dpu(&self, dpu: &Range<usize>, words: u64) -> NocStats {
        assert!(!dpu.is_empty() && dpu.end <= self.dpes, "invalid DPU range");
        let span = (dpu.len() - 1) as u64;
        let serialization = words.div_ceil(self.bandwidth as u64);
        // Every link in the chain carries the whole serialized stream.
        NocStats {
            hops: span * serialization,
            cycles: serialization + span,
            switches_configured: 0,
        }
    }

    /// Forwards `words` hop-by-hop between two Flex-DPEs in different
    /// DPUs (conventional-NoC behavior, statically routed).
    #[must_use]
    pub fn forward(&self, from: usize, to: usize, words: u64) -> NocStats {
        let d = self.hop_distance(from, to);
        let serialization = words.div_ceil(self.bandwidth as u64);
        NocStats { hops: d * serialization, cycles: serialization + d, switches_configured: 0 }
    }

    /// Cycles to merge one boundary partial sum from each DPE of a DPU
    /// into the output buffer at the DPU head — the cross-DPE cluster
    /// merge the Fig. 9 DSE charges.
    #[must_use]
    pub fn merge_boundary_partials(&self, dpu: &Range<usize>) -> NocStats {
        assert!(!dpu.is_empty() && dpu.end <= self.dpes, "invalid DPU range");
        let members = dpu.len() as u64;
        // One partial per member beyond the first, serialized on the bus.
        NocStats {
            hops: members.saturating_sub(1),
            cycles: members.saturating_sub(1).max(1),
            switches_configured: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_layout() {
        let noc = MeshNoc::new(16, 4);
        assert_eq!(noc.coords(0), (0, 0));
        assert_eq!(noc.coords(5), (1, 1));
        assert_eq!(noc.coords(15), (3, 3));
        assert_eq!(noc.hop_distance(0, 15), 6);
        assert_eq!(noc.hop_distance(3, 3), 0);
    }

    #[test]
    fn non_square_counts_work() {
        let noc = MeshNoc::new(6, 2);
        assert_eq!(noc.dpes(), 6);
        // ceil(sqrt(6)) = 3 columns.
        assert_eq!(noc.coords(5), (2, 1));
    }

    #[test]
    fn dpu_configuration_touches_each_switch_once() {
        let noc = MeshNoc::new(16, 4);
        let s = noc.configure_dpu(&(4..12));
        assert_eq!(s.switches_configured, 8);
        assert_eq!(s.cycles, 0);
    }

    #[test]
    fn multicast_is_pipelined_bus() {
        let noc = MeshNoc::new(16, 4);
        // 8 words over a 4-member DPU at 4 words/cycle: 2 cycles of
        // serialization + 3 chain-fill hops.
        let s = noc.multicast_within_dpu(&(0..4), 8);
        assert_eq!(s.cycles, 2 + 3);
        // A single-member DPU needs no chain.
        let s1 = noc.multicast_within_dpu(&(2..3), 8);
        assert_eq!(s1.cycles, 2);
    }

    #[test]
    fn forwarding_pays_distance() {
        let noc = MeshNoc::new(16, 4);
        let near = noc.forward(0, 1, 4);
        let far = noc.forward(0, 15, 4);
        assert!(far.cycles > near.cycles);
        assert_eq!(near.cycles, 1 + 1);
        assert_eq!(far.cycles, 1 + 6);
    }

    #[test]
    fn boundary_merge_serializes_members() {
        let noc = MeshNoc::new(16, 4);
        assert_eq!(noc.merge_boundary_partials(&(0..8)).cycles, 7);
        assert_eq!(noc.merge_boundary_partials(&(0..1)).cycles, 1);
    }

    #[test]
    fn stats_merge() {
        let a = NocStats { hops: 3, cycles: 5, switches_configured: 2 };
        let b = NocStats { hops: 1, cycles: 7, switches_configured: 1 };
        let m = a.merged(&b);
        assert_eq!(m.hops, 4);
        assert_eq!(m.cycles, 7); // parallel paths: max
        assert_eq!(m.switches_configured, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coords_bounds_checked() {
        let _ = MeshNoc::new(4, 1).coords(4);
    }
}
