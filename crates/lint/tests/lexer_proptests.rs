//! Property tests for the hand-rolled lexer: whatever the input, the
//! token spans must partition the source exactly — re-concatenating
//! `src[start..end]` over all tokens reproduces the input byte-for-byte,
//! with no gaps, overlaps, or reordering — and line numbers must match
//! an independent count.

use proptest::prelude::*;
use sigma_lint::lexer::lex;

/// Rebuilds the source from the token spans.
fn reconcat(src: &str) -> String {
    lex(src).iter().map(|t| t.text(src)).collect()
}

fn assert_partition(src: &str) {
    let toks = lex(src);
    let mut pos = 0usize;
    for t in &toks {
        assert_eq!(t.start, pos, "gap/overlap at byte {pos} in {src:?}");
        assert!(t.end >= t.start);
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tokens must cover the whole input: {src:?}");
    // Line numbers: 1 + newlines strictly before the token start.
    for t in &toks {
        let newlines = src[..t.start].bytes().filter(|&b| b == b'\n').count();
        let expect = u32::try_from(newlines).unwrap() + 1;
        assert_eq!(t.line, expect, "line mismatch for {:?} in {src:?}", t.text(src));
    }
}

/// Rust-ish source fragments, biased toward the constructs the lexer
/// special-cases: comments, strings, raw strings, chars, lifetimes —
/// plus unterminated constructs at EOF (the lexer is total, not
/// validating).
const FRAGMENTS: &[&str] = &[
    "let x = 1;\n",
    "// line comment\n",
    "/* block /* nested */ still */\n",
    "let s = \"str with \\\" escape\";\n",
    "let r = r#\"raw \" inside\"#;\n",
    "let r2 = r##\"deeper \"# still\"##;\n",
    "let c = 'x';\n",
    "let esc = '\\n';\n",
    "fn f<'a>(x: &'a str) -> &'a str { x }\n",
    "let b = b\"bytes\";\n",
    "let n = 0xFF_u64 as f64;\n",
    "m.get(&k).copied()\n",
    "#[cfg(test)]\nmod t {}\n",
    "let s = \"unterminated",
    "/* unterminated",
    "r#\"unterminated",
    "'",
    "\"",
    "r#",
];

/// One fragment index plus a tail of printable-ASCII noise bytes.
fn fragment() -> impl Strategy<Value = String> {
    (0..FRAGMENTS.len(), prop::collection::vec(0u8..96, 0..12)).prop_map(|(i, noise)| {
        let mut s = FRAGMENTS[i].to_string();
        // Map 0..96 onto space..DEL-1 plus tab/newline.
        s.extend(noise.into_iter().map(|b| match b {
            94 => '\t',
            95 => '\n',
            b => char::from(b + 0x20),
        }));
        s
    })
}

/// Arbitrary text over a small unicode-and-ASCII alphabet.
fn arbitrary_text(max_len: usize) -> impl Strategy<Value = String> {
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', '9', '_', ' ', '\t', '\n', '"', '\'', '\\', '/', '*', '#', 'r', 'b', '!',
        '(', ')', '{', '}', '.', ':', ';', '<', '>', '=', '&', '-', '+', '日', 'é', '𝕊', '\u{0}',
    ];
    prop::collection::vec(0..ALPHABET.len(), 0..max_len)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn spans_reconcatenate_byte_for_byte(parts in prop::collection::vec(fragment(), 0..8)) {
        let src = parts.concat();
        prop_assert_eq!(reconcat(&src), src.clone());
        assert_partition(&src);
    }

    #[test]
    fn arbitrary_text_partitions(src in arbitrary_text(200)) {
        prop_assert_eq!(reconcat(&src), src.clone());
        assert_partition(&src);
    }

    #[test]
    fn shuffled_fragments_partition(
        parts in prop::collection::vec(fragment(), 1..6).prop_shuffle()
    ) {
        let src = parts.concat();
        prop_assert_eq!(reconcat(&src), src.clone());
        assert_partition(&src);
    }
}

#[test]
fn fixed_corner_cases_partition() {
    for src in [
        "",
        "'",
        "\"",
        "r",
        "r#",
        "r#\"",
        "b'x'",
        "br#\"raw\"#",
        "'static",
        "'a: loop { break 'a; }",
        "0b1010_1010u128",
        "1.5e-10f32",
        "a/*x*/b//y",
        "let 日本語 = \"多字节\";",
    ] {
        assert_eq!(reconcat(src), src, "{src:?}");
        assert_partition(src);
    }
}
