//! Balanced flight-recorder spans: the begin is recorded on every
//! path (the fallible call's result is captured, the span recorded,
//! then the error propagated), the stage counter bumps inside its
//! stage's span, and the helper taking a caller-supplied start is
//! fine. Zero D9 findings.

impl Probe {
    pub fn lookup(&self) -> Result<(), Error> {
        let t0 = self.recorder.now_us();
        let outcome = self.fallible_probe();
        self.stats.hits += 1;
        self.recorder.span_since(Stage::CacheProbe, "lookup", t0);
        outcome?;
        Ok(())
    }

    pub fn finish_span(&self, t0: u64) {
        self.recorder.span_since(Stage::CacheProbe, "helper", t0);
    }
}
