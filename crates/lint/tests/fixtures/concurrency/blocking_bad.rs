//! Blocking operations while a guard is live: an fsync under the
//! index lock, a sleep under the store lock, and a transitive case
//! where a helper that fsyncs is called under a guard. Three D8
//! findings.

impl Depot {
    pub fn fsync_under_lock(&self, file: &std::fs::File) {
        let idx = self.index.lock();
        file.sync_all().ok();
        let _ = idx;
    }

    pub fn sleep_under_lock(&self) {
        let st = self.store.lock();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let _ = st;
    }

    fn flush_everything(&self, file: &std::fs::File) {
        file.sync_data().ok();
    }

    pub fn transitive_block(&self, file: &std::fs::File) {
        let idx = self.index.lock();
        self.flush_everything(file);
        let _ = idx;
    }
}
