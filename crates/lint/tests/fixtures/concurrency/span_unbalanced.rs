//! Unbalanced flight-recorder spans, three ways: a `?` that can exit
//! between begin and record (losing the span), a begin that is never
//! recorded at all, and a stage counter bumped outside any span of
//! its stage. Three D9 findings.

impl Probe {
    pub fn leaky_exit(&self) -> Result<(), Error> {
        let t0 = self.recorder.now_us();
        self.fallible_probe()?;
        self.recorder.span_since(Stage::CacheProbe, "leaky", t0);
        Ok(())
    }

    pub fn never_recorded(&self) {
        let t1 = self.recorder.now_us();
        let _ = t1;
    }

    pub fn counter_outside_span(&self) {
        self.stats.misses += 1;
    }
}
