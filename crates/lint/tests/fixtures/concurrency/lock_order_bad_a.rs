//! One half of a cross-file lock-order inversion: `index` then
//! `store`. Harmless alone; [`lock_order_bad_b.rs`] takes the same
//! pair the other way around, so together they are a D7 finding.

impl Depot {
    pub fn index_then_store(&self) {
        let idx = self.index.lock();
        let st = self.store.lock();
        let _ = (idx, st);
    }
}
