//! Shared lock declarations for the D7–D9 fixture corpus: three mutex
//! fields plus the condvar used by the lease-wait samples.

use std::sync::{Condvar, Mutex};

pub struct Depot {
    pub index: Mutex<u32>,
    pub store: Mutex<u32>,
    pub audit: Mutex<u32>,
    pub cond: Condvar,
}
