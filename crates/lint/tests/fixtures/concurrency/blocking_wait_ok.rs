//! The documented lease-wait pattern: `Condvar::wait` is handed the
//! *only* live guard, so the lock is released while the thread parks.
//! sigma-lint must report nothing here.

impl Depot {
    pub fn wait_for_lease(&self) {
        let mut idx = self.index.lock();
        idx = self.cond.wait(idx);
        let _ = idx;
    }
}
