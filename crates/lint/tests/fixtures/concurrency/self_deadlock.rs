//! Re-acquiring a lock whose guard is still live: instant deadlock
//! with `std::sync::Mutex`. One D7 finding at the second acquisition.

impl Depot {
    pub fn double_lock(&self) {
        let first = self.audit.lock();
        let second = self.audit.lock();
        let _ = (first, second);
    }
}
