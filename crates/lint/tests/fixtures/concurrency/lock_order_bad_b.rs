//! The other half of the inversion: `store` then `index`, opposite to
//! [`lock_order_bad_a.rs`]. Running both threads concurrently can
//! deadlock, so sigma-lint reports one D7 at this (later) site with
//! both acquisition chains in the hint.

impl Depot {
    pub fn store_then_index(&self) {
        let st = self.store.lock();
        let idx = self.index.lock();
        let _ = (st, idx);
    }
}
