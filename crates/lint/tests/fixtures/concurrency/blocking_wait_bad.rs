//! Waiting on a condvar while a *second* guard is live: the waited
//! lock is released, but `store` stays held for the whole park. One
//! D8 finding at the wait site.

impl Depot {
    pub fn wait_holding_store(&self) {
        let st = self.store.lock();
        let mut idx = self.index.lock();
        idx = self.cond.wait(idx);
        let _ = (st, idx);
    }
}
