//! Known-good lock ordering: every function that nests guards takes
//! `index` before `store`, and the sequential site drops its first
//! guard before acquiring the next. sigma-lint must report nothing.

impl Depot {
    pub fn promote(&self) {
        let idx = self.index.lock();
        let st = self.store.lock();
        let _ = (idx, st);
    }

    pub fn also_promotes(&self) {
        let idx = self.index.lock();
        let st = self.store.lock();
        let _ = (idx, st);
    }

    pub fn sequential(&self) {
        let st = self.store.lock();
        drop(st);
        let idx = self.index.lock();
        let _ = idx;
    }
}
