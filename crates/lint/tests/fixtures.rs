//! End-to-end analyzer tests: a synthetic workspace seeded with one
//! violation per lint must produce findings with exact `file:line`
//! coordinates, and the real workspace this crate ships in must scan
//! clean (every remaining finding waived in `lint.toml`).

use sigma_lint::{run, run_with_waivers, Lint, Waiver};
use std::fs;
use std::path::{Path, PathBuf};

/// A scratch workspace under the target-adjacent temp dir, removed on
/// drop so reruns start clean.
struct FixtureWorkspace {
    root: PathBuf,
}

impl FixtureWorkspace {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("sigma-lint-fixture-{}-{tag}", std::process::id()));
        if root.exists() {
            fs::remove_dir_all(&root).ok();
        }
        fs::create_dir_all(&root).unwrap();
        Self { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, contents).unwrap();
    }
}

impl Drop for FixtureWorkspace {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.root).ok();
    }
}

/// Library source for a determinism-critical crate seeding D1–D5, with
/// line numbers pinned by the literal layout below.
const SEEDED_CORE_LIB: &str = "\
use std::collections::HashMap;            // line 1: D1 (hash iteration order)
use std::time::Instant;                   // line 2: D1 (wall clock)

pub fn cycles_total(total_cycles: u64) -> u32 {
    let t = Instant::now();               // line 5: D1
    let _ = t;
    total_cycles as u32                   // line 7: D3 (truncating counter cast)
}

pub fn lookup(m: &HashMap<u32, u32>) -> u32 {
    *m.get(&0).unwrap()                   // line 11: D2
}

pub unsafe fn poke(p: *mut u8) {          // line 14: D4
    let _ = p;
}

pub trait Engine {
    fn run(&self);
}

pub struct Broken;

impl Engine for Broken {                  // line 24: D5 (no validate_finite)
    fn run(&self) {}
}
";

fn seeded_workspace(tag: &str) -> FixtureWorkspace {
    let ws = FixtureWorkspace::new(tag);
    ws.write("Cargo.toml", "[workspace]\nmembers = [\"crates/core\"]\n");
    ws.write("crates/core/Cargo.toml", "[package]\nname = \"core\"\n");
    ws.write("crates/core/src/lib.rs", SEEDED_CORE_LIB);
    ws
}

#[test]
fn seeded_workspace_produces_every_lint_with_exact_lines() {
    let ws = seeded_workspace("all-lints");
    let report = run_with_waivers(&ws.root, Vec::new()).unwrap();

    assert_eq!(report.files_scanned, 1);
    assert!(!report.clean(false));

    let hits: Vec<(Lint, u32, &str)> =
        report.findings.iter().map(|f| (f.lint, f.line, f.token.as_str())).collect();
    // D1 fires on the HashMap import, the Instant import, and the call.
    assert!(hits.contains(&(Lint::D1, 1, "HashMap")), "{hits:?}");
    assert!(hits.contains(&(Lint::D1, 10, "HashMap")), "{hits:?}");
    assert!(hits.contains(&(Lint::D1, 5, "Instant")), "{hits:?}");
    assert!(hits.contains(&(Lint::D2, 11, ".unwrap()")), "{hits:?}");
    assert!(hits.contains(&(Lint::D3, 7, "total_cycles as u32")), "{hits:?}");
    assert!(hits.contains(&(Lint::D4, 14, "unsafe")), "{hits:?}");
    assert!(hits.iter().any(|(l, _, _)| *l == Lint::D5), "{hits:?}");

    // Every finding names the repo-relative fixture file.
    for f in &report.findings {
        assert_eq!(f.path, "crates/core/src/lib.rs");
        assert!(f.line >= 1);
        assert!(!f.hint.is_empty());
        // The rendered diagnostic is file:line-addressable.
        let rendered = f.to_string();
        assert!(
            rendered.starts_with(&format!("crates/core/src/lib.rs:{}: ", f.line)),
            "{rendered}"
        );
    }
}

#[test]
fn test_code_in_the_same_file_is_exempt_from_d2() {
    let ws = FixtureWorkspace::new("cfg-test");
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write("crates/core/Cargo.toml", "[package]\n");
    ws.write(
        "crates/core/src/lib.rs",
        "pub fn ok() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
         Some(1).unwrap();\n    }\n}\n",
    );
    let report = run_with_waivers(&ws.root, Vec::new()).unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn waivers_suppress_and_go_stale() {
    let ws = seeded_workspace("waivers");
    let cover_d3 =
        Waiver { path: "crates/core/src/lib.rs".into(), lint: Lint::D3, reason: "fixture".into() };
    let stale = Waiver {
        path: "crates/core/src/nonexistent.rs".into(),
        lint: Lint::D1,
        reason: "covers nothing".into(),
    };
    let report = run_with_waivers(&ws.root, vec![cover_d3, stale.clone()]).unwrap();

    assert!(report.findings.iter().all(|f| f.lint != Lint::D3), "D3 should be waived");
    assert!(report.waived.iter().any(|f| f.lint == Lint::D3));
    assert_eq!(report.stale_waivers, vec![stale]);
    assert!(!report.clean(true), "stale waiver must fail --check-waivers");
}

#[test]
fn lint_toml_on_disk_is_honored_and_bad_toml_is_an_error() {
    let ws = seeded_workspace("lint-toml");
    ws.write(
        "lint.toml",
        "[[waiver]]\npath = \"crates/core/src/lib.rs\"\nlint = \"D4\"\nreason = \"fixture allocator\"\n",
    );
    let report = run(&ws.root).unwrap();
    assert!(report.findings.iter().all(|f| f.lint != Lint::D4));
    assert!(report.waived.iter().any(|f| f.lint == Lint::D4));

    ws.write("lint.toml", "[[waiver]]\npath = \"x.rs\"\nlint = \"D1\"\nreason = \"\"\n");
    assert!(run(&ws.root).is_err(), "empty reason must be rejected");
}

#[test]
fn bin_and_test_targets_are_exempt_from_d2_but_not_d4() {
    let ws = FixtureWorkspace::new("roles");
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write("crates/core/Cargo.toml", "[package]\n");
    ws.write("crates/core/src/lib.rs", "pub fn ok() {}\n");
    ws.write("crates/core/src/bin/tool.rs", "fn main() { Some(1).unwrap(); }\n");
    ws.write(
        "crates/core/tests/it.rs",
        "#[test]\nfn t() {\n    Some(1).unwrap();\n    unsafe { std::hint::unreachable_unchecked() };\n}\n",
    );
    let report = run_with_waivers(&ws.root, Vec::new()).unwrap();
    assert!(report.findings.iter().all(|f| f.lint != Lint::D2), "{:?}", report.findings);
    // unsafe outside the allowlist is flagged even in tests.
    assert!(
        report.findings.iter().any(|f| f.lint == Lint::D4 && f.path == "crates/core/tests/it.rs"),
        "{:?}",
        report.findings
    );
}

#[test]
fn harness_persistence_writes_must_be_atomic() {
    let ws = FixtureWorkspace::new("d6");
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write("crates/bench/Cargo.toml", "[package]\n");
    ws.write(
        "crates/bench/src/harness/store.rs",
        "pub fn save(path: &std::path::Path, data: &[u8]) -> std::io::Result<()> {\n    \
         std::fs::write(path, data)\n}\n\npub fn save_temp(tmp: &std::path::Path, data: &[u8]) \
         -> std::io::Result<()> {\n    std::fs::write(tmp, data)\n}\n",
    );
    let report = run_with_waivers(&ws.root, Vec::new()).unwrap();
    let d6: Vec<_> = report.findings.iter().filter(|f| f.lint == Lint::D6).collect();
    // The direct write is flagged; the temp-sibling write is the
    // sanctioned half of write-then-rename and passes.
    assert_eq!(d6.len(), 1, "{:?}", report.findings);
    assert_eq!((d6[0].line, d6[0].token.as_str()), (2, "fs::write"));
}

#[test]
fn a_sixth_waiver_breaks_the_budget_under_check_waivers() {
    let ws = FixtureWorkspace::new("budget");
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write("crates/core/Cargo.toml", "[package]\n");
    let mut waivers = Vec::new();
    for i in 0..6 {
        let rel = format!("crates/core/src/m{i}.rs");
        ws.write(&rel, "pub fn f() { Some(1).unwrap(); }\n");
        waivers.push(Waiver { path: rel, lint: Lint::D2, reason: "fixture".into() });
    }
    let report = run_with_waivers(&ws.root, waivers).unwrap();
    // Every waiver is live and every finding covered — only the budget
    // is violated.
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.stale_waivers.is_empty(), "{:?}", report.stale_waivers);
    assert!(report.clean(false), "budget only applies under --check-waivers");
    assert!(!report.clean(true), "a sixth waiver must fail --check-waivers");
}

#[test]
fn the_shipping_workspace_scans_clean() {
    // crates/lint/ -> crates/ -> repo root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let report = run(root).unwrap();
    assert!(
        report.findings.is_empty(),
        "unwaived findings in the shipping workspace:\n{}",
        report.findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    assert!(report.stale_waivers.is_empty(), "stale waivers: {:?}", report.stale_waivers);
    assert!(report.files_scanned > 50, "suspiciously few files: {}", report.files_scanned);
    // The waiver budget from the PR acceptance bar.
    assert!(report.waivers.len() <= 5, "waiver budget exceeded: {}", report.waivers.len());
    assert!(report.waivers.iter().all(|w| !w.reason.trim().is_empty()));
}
