//! D7–D9 corpus tests: each fixture under `tests/fixtures/concurrency/`
//! is dropped into a scratch workspace and must produce its exact
//! finding list — known-bad files down to `(lint, file, line)`,
//! known-good files down to zero findings.

use sigma_lint::{run_with_waivers, Lint};
use std::fs;
use std::path::PathBuf;

/// A scratch workspace under the temp dir, removed on drop so reruns
/// start clean.
struct FixtureWorkspace {
    root: PathBuf,
}

impl FixtureWorkspace {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir()
            .join(format!("sigma-lint-concurrency-{}-{tag}", std::process::id()));
        if root.exists() {
            fs::remove_dir_all(&root).ok();
        }
        fs::create_dir_all(&root).unwrap();
        Self { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, contents).unwrap();
    }
}

impl Drop for FixtureWorkspace {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.root).ok();
    }
}

const LOCKS: &str = include_str!("fixtures/concurrency/locks.rs");

/// Runs the analyzer over the lock declarations plus the named corpus
/// files (placed under a plain lib crate), returning sorted
/// `(lint, path, line)` triples.
fn scan(tag: &str, corpus: &[(&str, &str)]) -> Vec<(Lint, String, u32)> {
    let ws = FixtureWorkspace::new(tag);
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write("crates/depot/Cargo.toml", "[package]\n");
    ws.write("crates/depot/src/locks.rs", LOCKS);
    for (name, contents) in corpus {
        ws.write(&format!("crates/depot/src/{name}"), contents);
    }
    let report = run_with_waivers(&ws.root, Vec::new()).unwrap();
    report.findings.iter().map(|f| (f.lint, f.path.clone(), f.line)).collect()
}

fn depot(name: &str) -> String {
    format!("crates/depot/src/{name}")
}

#[test]
fn good_lock_order_scans_clean() {
    let corpus = [("lock_order_good.rs", include_str!("fixtures/concurrency/lock_order_good.rs"))];
    assert_eq!(scan("order-good", &corpus), vec![]);
}

#[test]
fn opposite_lock_order_across_files_is_one_d7() {
    let corpus = [
        ("lock_order_bad_a.rs", include_str!("fixtures/concurrency/lock_order_bad_a.rs")),
        ("lock_order_bad_b.rs", include_str!("fixtures/concurrency/lock_order_bad_b.rs")),
    ];
    assert_eq!(scan("order-bad", &corpus), vec![(Lint::D7, depot("lock_order_bad_b.rs"), 9)]);
}

#[test]
fn self_reacquire_is_a_d7() {
    let corpus = [("self_deadlock.rs", include_str!("fixtures/concurrency/self_deadlock.rs"))];
    assert_eq!(scan("self-deadlock", &corpus), vec![(Lint::D7, depot("self_deadlock.rs"), 7)]);
}

#[test]
fn blocking_under_guard_is_a_d8_per_site() {
    let corpus = [("blocking_bad.rs", include_str!("fixtures/concurrency/blocking_bad.rs"))];
    let path = depot("blocking_bad.rs");
    assert_eq!(
        scan("blocking-bad", &corpus),
        vec![
            (Lint::D8, path.clone(), 9),  // fsync under the index lock
            (Lint::D8, path.clone(), 15), // sleep under the store lock
            (Lint::D8, path, 25),         // transitive: helper that fsyncs
        ]
    );
}

#[test]
fn lease_wait_on_the_sole_guard_is_clean() {
    let corpus =
        [("blocking_wait_ok.rs", include_str!("fixtures/concurrency/blocking_wait_ok.rs"))];
    assert_eq!(scan("wait-ok", &corpus), vec![]);
}

#[test]
fn waiting_while_a_second_guard_is_live_is_a_d8() {
    let corpus =
        [("blocking_wait_bad.rs", include_str!("fixtures/concurrency/blocking_wait_bad.rs"))];
    assert_eq!(scan("wait-bad", &corpus), vec![(Lint::D8, depot("blocking_wait_bad.rs"), 9)]);
}

/// Runs the span fixtures under the harness path prefix D9 is scoped
/// to.
fn scan_spans(tag: &str, name: &str, contents: &str) -> Vec<(Lint, u32)> {
    let ws = FixtureWorkspace::new(tag);
    ws.write("Cargo.toml", "[workspace]\n");
    ws.write("crates/bench/Cargo.toml", "[package]\n");
    ws.write(&format!("crates/bench/src/harness/{name}"), contents);
    let report = run_with_waivers(&ws.root, Vec::new()).unwrap();
    report.findings.iter().map(|f| (f.lint, f.line)).collect()
}

#[test]
fn balanced_spans_scan_clean() {
    let got =
        scan_spans("span-good", "span_good.rs", include_str!("fixtures/concurrency/span_good.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn unbalanced_spans_are_three_d9s() {
    let got = scan_spans(
        "span-bad",
        "span_unbalanced.rs",
        include_str!("fixtures/concurrency/span_unbalanced.rs"),
    );
    assert_eq!(
        got,
        vec![
            (Lint::D9, 9),  // `?` between begin and record
            (Lint::D9, 15), // begin never recorded
            (Lint::D9, 20), // counter bumped outside its stage span
        ]
    );
}
