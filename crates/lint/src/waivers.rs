//! `lint.toml` waiver parsing.
//!
//! The waiver file is a TOML subset parsed by hand (vendored-deps
//! policy: no `toml` crate). Grammar:
//!
//! ```toml
//! # comments and blank lines are ignored
//! [[waiver]]
//! path = "crates/matrix/src/dense.rs"
//! lint = "D2"
//! reason = "why this file is exempt"
//! ```
//!
//! Every entry must carry all three keys, `lint` must be one of
//! `D1`..`D9`, and `reason` must be non-empty — a waiver without a
//! written justification is rejected at parse time.

use crate::rules::{Finding, Lint};

/// One parsed `[[waiver]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Repo-relative path the waiver applies to (forward slashes).
    pub path: String,
    /// The lint being waived for that file.
    pub lint: Lint,
    /// Mandatory human-written justification.
    pub reason: String,
}

impl Waiver {
    /// Whether this waiver covers `finding`.
    #[must_use]
    pub fn covers(&self, finding: &Finding) -> bool {
        self.lint == finding.lint && self.path == finding.path
    }
}

/// A syntax or semantic error in `lint.toml`, with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverError {
    /// 1-based line in `lint.toml` (0 for end-of-file errors).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for WaiverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for WaiverError {}

/// A waiver entry under construction: the line that opened it (for
/// error reporting) plus its three fields, each optional until sealed.
type PartialWaiver = (u32, Option<String>, Option<Lint>, Option<String>);

/// Parses the waiver file contents.
pub fn parse_waivers(src: &str) -> Result<Vec<Waiver>, WaiverError> {
    let mut waivers = Vec::new();
    let mut current: Option<PartialWaiver> = None;

    for (idx, raw) in src.lines().enumerate() {
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[waiver]]" {
            if let Some(entry) = current.take() {
                waivers.push(seal(entry)?);
            }
            current = Some((lineno, None, None, None));
            continue;
        }
        if line.starts_with('[') {
            return Err(WaiverError {
                line: lineno,
                message: format!("unknown section `{line}`; only [[waiver]] is supported"),
            });
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(WaiverError {
                line: lineno,
                message: format!("expected `key = \"value\"`, got `{line}`"),
            });
        };
        let key = key.trim();
        let value = parse_string(value.trim()).ok_or_else(|| WaiverError {
            line: lineno,
            message: format!("value for `{key}` must be a double-quoted string"),
        })?;
        let Some(entry) = current.as_mut() else {
            return Err(WaiverError {
                line: lineno,
                message: format!("`{key}` outside a [[waiver]] entry"),
            });
        };
        match key {
            "path" => entry.1 = Some(value.replace('\\', "/")),
            "lint" => {
                let lint = Lint::parse(&value).ok_or_else(|| WaiverError {
                    line: lineno,
                    message: format!("unknown lint `{value}` (expected D1..D9)"),
                })?;
                entry.2 = Some(lint);
            }
            "reason" => {
                if value.trim().is_empty() {
                    return Err(WaiverError {
                        line: lineno,
                        message: "waiver reason must be non-empty".into(),
                    });
                }
                entry.3 = Some(value);
            }
            other => {
                return Err(WaiverError {
                    line: lineno,
                    message: format!("unknown key `{other}` (expected path/lint/reason)"),
                });
            }
        }
    }
    if let Some(entry) = current.take() {
        waivers.push(seal(entry)?);
    }
    Ok(waivers)
}

fn seal(entry: (u32, Option<String>, Option<Lint>, Option<String>)) -> Result<Waiver, WaiverError> {
    let (line, path, lint, reason) = entry;
    let missing = |what: &str| WaiverError {
        line,
        message: format!("[[waiver]] is missing required key `{what}`"),
    };
    Ok(Waiver {
        path: path.ok_or_else(|| missing("path"))?,
        lint: lint.ok_or_else(|| missing("lint"))?,
        reason: reason.ok_or_else(|| missing("reason"))?,
    })
}

/// Parses a double-quoted TOML basic string with `\"`/`\\` escapes.
fn parse_string(v: &str) -> Option<String> {
    let rest = v.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                // Only trailing comments may follow the closing quote.
                let tail = chars.as_str().trim();
                if tail.is_empty() || tail.starts_with('#') {
                    return Some(out);
                }
                return None;
            }
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            },
            other => out.push(other),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multiple_waivers() {
        let src = r#"
# waiver file
[[waiver]]
path = "crates/matrix/src/dense.rs"
lint = "D2"
reason = "panicking matmul mirrors std ops; try_matmul is the checked API"

[[waiver]]
path = "crates/bench/src/util.rs"
lint = "D2"
reason = "Table::push convenience"
"#;
        let got = parse_waivers(src).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].lint, Lint::D2);
        assert_eq!(got[0].path, "crates/matrix/src/dense.rs");
        assert!(got[1].reason.contains("convenience"));
    }

    #[test]
    fn rejects_empty_reason() {
        let src = "[[waiver]]\npath = \"x.rs\"\nlint = \"D1\"\nreason = \"  \"\n";
        let err = parse_waivers(src).unwrap_err();
        assert!(err.message.contains("non-empty"), "{err}");
    }

    #[test]
    fn rejects_missing_fields_and_unknown_lints() {
        let err = parse_waivers("[[waiver]]\npath = \"x.rs\"\nlint = \"D1\"\n").unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
        let err = parse_waivers("[[waiver]]\npath = \"x.rs\"\nlint = \"D12\"\nreason = \"r\"\n")
            .unwrap_err();
        assert!(err.message.contains("unknown lint"), "{err}");
    }

    #[test]
    fn rejects_stray_keys_and_sections() {
        assert!(parse_waivers("path = \"x.rs\"\n").is_err());
        assert!(parse_waivers("[waiver]\n").is_err());
        let src =
            "[[waiver]]\npath = \"x.rs\"\nlint = \"D1\"\nreason = \"r\"\nseverity = \"low\"\n";
        assert!(parse_waivers(src).is_err());
    }

    #[test]
    fn covers_matches_path_and_lint() {
        let w = Waiver { path: "a/b.rs".into(), lint: Lint::D2, reason: "r".into() };
        let f = Finding {
            lint: Lint::D2,
            path: "a/b.rs".into(),
            line: 1,
            token: ".unwrap()".into(),
            hint: String::new(),
        };
        assert!(w.covers(&f));
        let other = Finding { lint: Lint::D1, ..f };
        assert!(!w.covers(&other));
    }
}
