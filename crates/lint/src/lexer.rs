//! A hand-rolled, comment/string/raw-string-aware Rust lexer.
//!
//! The analyzer needs to tell an `unwrap` in executable code from an
//! `unwrap` in a doc comment or a string literal, and it must do so
//! offline with no `syn`/`proc-macro2` dependency (the workspace vendors
//! every dependency). This lexer tokenizes a Rust source file into spans
//! that cover the input byte-for-byte: comments (line, doc, and *nested*
//! block comments), string literals (plain, byte, C, and raw with any
//! number of `#`s), char literals vs. lifetimes, numbers, identifiers,
//! and punctuation.
//!
//! The lexer is **total**: any byte sequence — including invalid or
//! truncated Rust — produces a token stream whose concatenated spans
//! reproduce the source exactly (an unterminated literal simply extends
//! to end of input). A proptest pins that round-trip property.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// ...` including doc comments (`///`, `//!`).
    LineComment,
    /// `/* ... */`, nesting-aware, including doc forms (`/** */`).
    BlockComment,
    /// Identifier or keyword (`foo`, `unsafe`), or a raw identifier
    /// (`r#match`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A char literal `'x'`, `'\n'`, or a byte char `b'x'`.
    CharLit,
    /// `"..."`, `b"..."`, or `c"..."` with escapes.
    StrLit,
    /// `r"..."`, `r#"..."#`, `br#"..."#`, `cr"..."` — any hash depth.
    RawStrLit,
    /// Integer or float literal (including suffixes: `1_000u64`, `1e-3`).
    Number,
    /// A single punctuation byte (`.`, `:`, `!`, braces, operators, ...).
    Punct,
}

/// One lexed span: `kind` plus the half-open byte range `[start, end)`
/// and the 1-based line its first byte sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification of the span.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text inside its source.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Tokenizes `src` completely; the concatenation of all token spans is
/// exactly `src`.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1 }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic() || b >= 0x80
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            out.push(Token { kind, start, end: self.pos, line });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// Advances up to `n` bytes.
    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos < self.src.len() {
                self.bump();
            }
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let c = self.src[self.pos];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                while matches!(self.peek(0), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                    self.bump();
                }
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while let Some(b) = self.peek(0) {
                    if b == b'\n' {
                        break;
                    }
                    self.bump();
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 && self.pos < self.src.len() {
                    if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                        depth += 1;
                        self.bump_n(2);
                    } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                        depth -= 1;
                        self.bump_n(2);
                    } else {
                        self.bump();
                    }
                }
                TokenKind::BlockComment
            }
            b'r' | b'b' | b'c' => match self.string_prefix_kind() {
                Some(kind) => kind,
                None => self.ident(),
            },
            b'"' => {
                self.bump();
                self.quoted_tail(b'"');
                TokenKind::StrLit
            }
            b'\'' => self.char_or_lifetime(),
            _ if is_ident_start(c) => self.ident(),
            _ if c.is_ascii_digit() => {
                self.number();
                TokenKind::Number
            }
            _ => {
                self.bump();
                TokenKind::Punct
            }
        }
    }

    fn ident(&mut self) -> TokenKind {
        // Raw identifier r#name lexes as one Ident span.
        if self.peek(0) == Some(b'r')
            && self.peek(1) == Some(b'#')
            && self.peek(2).is_some_and(is_ident_start)
        {
            self.bump_n(2);
        }
        self.bump();
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        TokenKind::Ident
    }

    /// Consumes a `\`-escape-aware quoted literal tail up to and
    /// including the closing `quote` (or end of input).
    fn quoted_tail(&mut self, quote: u8) {
        while let Some(b) = self.peek(0) {
            if b == b'\\' {
                self.bump_n(2);
            } else if b == quote {
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
    }

    /// Recognizes string/char literals introduced by an `r`/`b`/`c`
    /// prefix (`r"`, `r#"`, `b"`, `br#"`, `c"`, `cr"`, `b'`). Returns
    /// `None` without consuming anything when the prefix is just the
    /// start of an ordinary identifier (`radius`, `break`, `r#match`).
    fn string_prefix_kind(&mut self) -> Option<TokenKind> {
        let rest = &self.src[self.pos..];
        // b'x' byte char literal.
        if rest.len() >= 2 && rest[0] == b'b' && rest[1] == b'\'' {
            self.bump_n(2);
            self.quoted_tail(b'\'');
            return Some(TokenKind::CharLit);
        }
        // Longest-first: two-byte prefixes br / cr, then r / b / c.
        let (prefix_len, raw) = if rest.len() >= 2
            && (rest[0] == b'b' || rest[0] == b'c')
            && rest[1] == b'r'
            && raw_body_follows(&rest[2..])
        {
            (2, true)
        } else if rest[0] == b'r' && raw_body_follows(&rest[1..]) {
            (1, true)
        } else if (rest[0] == b'b' || rest[0] == b'c') && rest.get(1) == Some(&b'"') {
            (1, false)
        } else {
            return None;
        };
        self.bump_n(prefix_len);
        if raw {
            let mut hashes = 0usize;
            while self.peek(0) == Some(b'#') {
                hashes += 1;
                self.bump();
            }
            if self.peek(0) == Some(b'"') {
                self.bump();
                self.raw_tail(hashes);
            }
            Some(TokenKind::RawStrLit)
        } else {
            self.bump(); // the opening quote
            self.quoted_tail(b'"');
            Some(TokenKind::StrLit)
        }
    }

    /// Consumes a raw-string tail until `"` followed by `hashes` `#`s.
    fn raw_tail(&mut self, hashes: usize) {
        while self.pos < self.src.len() {
            if self.peek(0) == Some(b'"') {
                let closes = (0..hashes).all(|h| self.peek(1 + h) == Some(b'#'));
                if closes {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) from `'\n'`.
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump(); // the opening '
        match self.peek(0) {
            // Escape: definitely a char literal.
            Some(b'\\') => {
                self.quoted_tail(b'\'');
                TokenKind::CharLit
            }
            Some(b'\'') => {
                // '' — empty (invalid) char literal; consume the close.
                self.bump();
                TokenKind::CharLit
            }
            Some(b) => {
                // Maximal identifier-ish run after the quote, then decide
                // by whether a closing quote follows it.
                let mut k = 0usize;
                while self.peek(k).is_some_and(is_ident_continue) {
                    k += 1;
                }
                if k > 0 && self.peek(k) == Some(b'\'') {
                    // 'a' (char) — also closes invalid multi-char forms.
                    self.bump_n(k + 1);
                    TokenKind::CharLit
                } else if k > 0 && is_ident_start(b) {
                    // 'a, 'static — a lifetime, no closing quote.
                    self.bump_n(k);
                    TokenKind::Lifetime
                } else {
                    // '+' and friends: single char then maybe a close.
                    self.bump();
                    if self.peek(0) == Some(b'\'') {
                        self.bump();
                    }
                    TokenKind::CharLit
                }
            }
            None => TokenKind::Punct,
        }
    }

    fn number(&mut self) {
        // Digits, underscores, hex/oct/bin prefixes, float dots and
        // exponents, and type suffixes all continue the literal.
        let has_base_prefix = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
        self.bump();
        while let Some(b) = self.peek(0) {
            match b {
                // A float exponent — but only in a decimal literal and
                // only when exponent digits actually follow: `0x1e+3`
                // is addition on a hex literal (the `e` is a hex digit)
                // and `1e-x` must leave the `-` as an operator.
                b'e' | b'E'
                    if !has_base_prefix
                        && (matches!(self.peek(1), Some(d) if d.is_ascii_digit())
                            || (matches!(self.peek(1), Some(b'+' | b'-'))
                                && matches!(self.peek(2), Some(d) if d.is_ascii_digit()))) =>
                {
                    self.bump();
                    if matches!(self.peek(0), Some(b'+' | b'-')) {
                        self.bump();
                    }
                }
                b'.' => {
                    // 1..4 is a range, not a float: only consume the dot
                    // when a digit follows.
                    if matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                // Hex digits, underscores, base prefixes, and type
                // suffixes (`u64`, `usize`, `f32`) all continue the span.
                _ if is_ident_continue(b) => self.bump(),
                _ => break,
            }
        }
    }
}

/// Whether `t` (the bytes after a raw-string `r`) starts a raw body:
/// zero or more `#` then `"`.
fn raw_body_follows(t: &[u8]) -> bool {
    let mut i = 0;
    while t.get(i) == Some(&b'#') {
        i += 1;
    }
    t.get(i) == Some(&b'"')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().filter(|t| t.kind != TokenKind::Whitespace).map(|t| t.kind).collect()
    }

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src, "lex spans must cover the source exactly");
        let mut at = 0;
        for t in &toks {
            assert_eq!(t.start, at);
            assert!(t.end > t.start);
            at = t.end;
        }
        assert_eq!(at, src.len());
    }

    #[test]
    fn idents_and_punct() {
        roundtrip("fn main() { let x = a.unwrap(); }");
        assert!(kinds("a.unwrap()").contains(&TokenKind::Ident));
    }

    #[test]
    fn line_and_doc_comments_hide_tokens() {
        let src = "// unwrap()\n/// HashMap doc\nlet x = 1;\n";
        let toks = lex(src);
        let comments: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::LineComment).collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text(src).contains("unwrap"));
        roundtrip(src);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ code";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[0].text(src).ends_with("comment */"));
        roundtrip(src);
        roundtrip("/* unterminated /* nested ");
    }

    #[test]
    fn strings_with_escapes() {
        roundtrip(r#"let s = "quote \" and \\ backslash"; x"#);
        let src = r#""contains unwrap()" ident"#;
        assert_eq!(lex(src)[0].kind, TokenKind::StrLit);
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = "r\"plain\" r#\"one # inside\"# r##\"deep \"# still\"## tail";
        let toks: Vec<_> =
            lex(src).into_iter().filter(|t| t.kind != TokenKind::Whitespace).collect();
        assert_eq!(toks[0].kind, TokenKind::RawStrLit);
        assert_eq!(toks[1].kind, TokenKind::RawStrLit);
        assert_eq!(toks[2].kind, TokenKind::RawStrLit);
        assert_eq!(toks[3].kind, TokenKind::Ident);
        roundtrip(src);
    }

    #[test]
    fn byte_and_c_strings() {
        roundtrip(r###"b"bytes" br#"raw bytes"# c"cstr" cr#"raw c"# b'x'"###);
        let src = r#"b"unwrap()" x"#;
        assert_eq!(lex(src)[0].kind, TokenKind::StrLit);
        let src = "br#\"HashMap\"# y";
        assert_eq!(lex(src)[0].kind, TokenKind::RawStrLit);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let s: &'static str = c; }";
        let toks: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| matches!(t.kind, TokenKind::Lifetime | TokenKind::CharLit))
            .collect();
        assert_eq!(
            toks.iter().map(|t| t.kind).collect::<Vec<_>>(),
            vec![
                TokenKind::Lifetime,
                TokenKind::Lifetime,
                TokenKind::CharLit,
                TokenKind::CharLit,
                TokenKind::Lifetime,
            ]
        );
        roundtrip(src);
    }

    #[test]
    fn raw_identifiers_lex_whole() {
        let src = "let r#match = 1; r#fn";
        let idents: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(idents, vec!["let", "r#match", "r#fn"]);
        roundtrip(src);
    }

    #[test]
    fn numbers() {
        roundtrip("1_000u64 0xFFusize 1e-3 3.25f32 1..4 0b1010");
        assert_eq!(
            kinds("1..4"),
            vec![TokenKind::Number, TokenKind::Punct, TokenKind::Punct, TokenKind::Number]
        );
    }

    #[test]
    fn hex_exponent_lookalikes_do_not_swallow_operators() {
        // `0x1e+3` is addition on a hex literal, not a float exponent.
        assert_eq!(kinds("0x1e+3"), vec![TokenKind::Number, TokenKind::Punct, TokenKind::Number]);
        // A sign with no exponent digits stays an operator.
        assert_eq!(kinds("1e-x"), vec![TokenKind::Number, TokenKind::Punct, TokenKind::Ident]);
        // Real exponents still lex as one literal.
        assert_eq!(kinds("1e-3"), vec![TokenKind::Number]);
        assert_eq!(kinds("2.5E+10f64"), vec![TokenKind::Number]);
        assert_eq!(kinds("0x1E"), vec![TokenKind::Number]);
        assert_eq!(kinds("0b1010"), vec![TokenKind::Number]);
        roundtrip("0x1e+3 1e-x 1e-3 2.5E+10f64 0o17e+2");
    }

    #[test]
    fn rule_tokens_inside_raw_strings_stay_literals() {
        // A `"#` lookalike inside a deeper raw string must not close it
        // early and leak `unwrap`/`lock` idents into the rule matcher.
        let src = "let s = r##\"says \"# unwrap() .lock() \"##; tail";
        let toks = lex(src);
        let raw: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::RawStrLit).collect();
        assert_eq!(raw.len(), 1);
        assert!(raw[0].text(src).contains("unwrap"));
        let idents: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text(src)).collect();
        assert_eq!(idents, vec!["let", "s", "tail"]);
        roundtrip(src);
    }

    #[test]
    fn nested_comments_containing_string_openers_stay_comments() {
        // String openers inside a nested block comment must not start a
        // literal that swallows the comment close.
        let src = "/* r#\" not a string /* \" */ still */ after";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[0].text(src).ends_with("still */"));
        let idents: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text(src)).collect();
        assert_eq!(idents, vec!["after"]);
        roundtrip(src);
    }

    #[test]
    fn unterminated_literals_extend_to_eof() {
        roundtrip("let s = \"no close");
        roundtrip("let s = r#\"no close");
        roundtrip("let c = '");
        roundtrip("x /* open");
    }

    #[test]
    fn multibyte_utf8() {
        roundtrip("let emoji = \"🦀\"; // ünïcode comment\nlet ü = 1;");
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n  c /* x\ny */ d";
        let lines: Vec<(String, u32)> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text(src).to_string(), t.line))
            .collect();
        assert_eq!(lines, vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 3), ("d".into(), 4)]);
    }
}
