//! SARIF 2.1.0 rendering for CI annotation.
//!
//! GitHub's `codeql-action/upload-sarif` turns a SARIF log into inline
//! PR annotations, so every unwaived finding shows up on the diff line
//! it fired on. The renderer emits the minimal valid shape — one run,
//! one `tool.driver` carrying all nine rule definitions, one `result`
//! per finding — with stable key order so the artifact diffs cleanly
//! across CI runs. [`validate_sarif_2_1_0`] asserts that shape back
//! (via a tiny self-contained JSON reader), which is what the
//! acceptance test pins.

use crate::rules::Lint;
use crate::{json_str, Report};

/// Renders the report's unwaived findings as a SARIF 2.1.0 log.
#[must_use]
pub fn report_to_sarif(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"sigma-lint\",\n");
    s.push_str("          \"informationUri\": \"https://github.com/sigma/sigma\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, lint) in Lint::ALL.iter().enumerate() {
        let comma = if i + 1 < Lint::ALL.len() { "," } else { "" };
        s.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{comma}\n",
            json_str(lint.name()),
            json_str(lint.description())
        ));
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let comma = if i + 1 < report.findings.len() { "," } else { "" };
        let rule_index = Lint::ALL.iter().position(|l| *l == f.lint).unwrap_or(0);
        s.push_str("        {\n");
        s.push_str(&format!("          \"ruleId\": {},\n", json_str(f.lint.name())));
        s.push_str(&format!("          \"ruleIndex\": {rule_index},\n"));
        s.push_str("          \"level\": \"error\",\n");
        s.push_str(&format!(
            "          \"message\": {{\"text\": {}}},\n",
            json_str(&format!("{} — {}", f.token, f.hint))
        ));
        s.push_str("          \"locations\": [\n            {\n");
        s.push_str("              \"physicalLocation\": {\n");
        s.push_str(&format!(
            "                \"artifactLocation\": {{\"uri\": {}, \"uriBaseId\": \"%SRCROOT%\"}},\n",
            json_str(&f.path)
        ));
        s.push_str(&format!("                \"region\": {{\"startLine\": {}}}\n", f.line.max(1)));
        s.push_str("              }\n            }\n          ]\n");
        s.push_str(&format!("        }}{comma}\n"));
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

/// A parsed JSON value — just enough for shape validation.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        Some(&b) => out.push(b as char),
                        None => return Err("unterminated escape".into()),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 passes through untouched.
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| format!("bad utf-8 at byte {}", self.pos))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.eat(b':')?;
            pairs.push((key, self.value()?));
            self.ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

/// Asserts the SARIF 2.1.0 shape GitHub's upload action requires:
/// version, one run with tool-driver rule metadata, and per-result
/// `ruleId`/`message.text`/physical locations with positive lines.
pub fn validate_sarif_2_1_0(src: &str) -> Result<(), String> {
    let doc = parse_json(src)?;
    if doc.get("version").and_then(Json::as_str) != Some("2.1.0") {
        return Err("version must be \"2.1.0\"".into());
    }
    if doc.get("$schema").and_then(Json::as_str).is_none_or(|s| !s.contains("sarif-2.1.0")) {
        return Err("$schema must reference sarif-2.1.0".into());
    }
    let runs = doc.get("runs").and_then(Json::as_arr).ok_or("runs must be an array")?;
    if runs.is_empty() {
        return Err("runs must be non-empty".into());
    }
    for run in runs {
        let driver =
            run.get("tool").and_then(|t| t.get("driver")).ok_or("each run needs tool.driver")?;
        if driver.get("name").and_then(Json::as_str).is_none_or(str::is_empty) {
            return Err("tool.driver.name must be a non-empty string".into());
        }
        let rules = driver
            .get("rules")
            .and_then(Json::as_arr)
            .ok_or("tool.driver.rules must be an array")?;
        for rule in rules {
            if rule.get("id").and_then(Json::as_str).is_none_or(str::is_empty) {
                return Err("every rule needs a non-empty id".into());
            }
        }
        let results =
            run.get("results").and_then(Json::as_arr).ok_or("results must be an array")?;
        for r in results {
            let rule_id =
                r.get("ruleId").and_then(Json::as_str).ok_or("result.ruleId must be a string")?;
            if !rules.iter().any(|rl| rl.get("id").and_then(Json::as_str) == Some(rule_id)) {
                return Err(format!("result.ruleId `{rule_id}` has no rule definition"));
            }
            if r.get("message")
                .and_then(|m| m.get("text"))
                .and_then(Json::as_str)
                .is_none_or(str::is_empty)
            {
                return Err("result.message.text must be a non-empty string".into());
            }
            let locations = r
                .get("locations")
                .and_then(Json::as_arr)
                .ok_or("result.locations must be an array")?;
            for loc in locations {
                let phys =
                    loc.get("physicalLocation").ok_or("each location needs physicalLocation")?;
                if phys
                    .get("artifactLocation")
                    .and_then(|a| a.get("uri"))
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    return Err("physicalLocation.artifactLocation.uri must be set".into());
                }
                if phys
                    .get("region")
                    .and_then(|rg| rg.get("startLine"))
                    .and_then(Json::as_num)
                    .is_none_or(|n| n < 1.0)
                {
                    return Err("physicalLocation.region.startLine must be >= 1".into());
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    fn sample_report() -> Report {
        Report {
            findings: vec![
                Finding {
                    lint: Lint::D7,
                    path: "crates/bench/src/harness/cache.rs".into(),
                    line: 42,
                    token: "state <-> store".into(),
                    hint: "lock-order inversion with a \"quote\" and a \\ backslash".into(),
                },
                Finding {
                    lint: Lint::D2,
                    path: "crates/core/src/lib.rs".into(),
                    line: 7,
                    token: ".unwrap()".into(),
                    hint: "unwrap in library code".into(),
                },
            ],
            ..Report::default()
        }
    }

    #[test]
    fn rendered_sarif_passes_the_shape_validator() {
        let sarif = report_to_sarif(&sample_report());
        validate_sarif_2_1_0(&sarif).unwrap();
        assert!(sarif.contains("\"ruleId\": \"D7\""));
        assert!(sarif.contains("\"startLine\": 42"));
        assert!(sarif.contains("%SRCROOT%"));
    }

    #[test]
    fn empty_report_is_still_valid_sarif() {
        let sarif = report_to_sarif(&Report::default());
        validate_sarif_2_1_0(&sarif).unwrap();
        assert!(sarif.contains("\"results\": [\n      ]"));
        // All nine rules are always declared, findings or not.
        for lint in Lint::ALL {
            assert!(sarif.contains(&format!("\"id\": \"{}\"", lint.name())), "{}", lint.name());
        }
    }

    #[test]
    fn validator_rejects_broken_shapes() {
        assert!(validate_sarif_2_1_0("{}").is_err());
        assert!(validate_sarif_2_1_0("{\"version\": \"2.0.0\"}").is_err());
        let no_rule_def = r#"{
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {"name": "x", "rules": []}},
                "results": [{
                    "ruleId": "D1",
                    "message": {"text": "m"},
                    "locations": []
                }]
            }]
        }"#;
        let err = validate_sarif_2_1_0(no_rule_def).unwrap_err();
        assert!(err.contains("no rule definition"), "{err}");
        let zero_line = r#"{
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {"name": "x", "rules": [{"id": "D1"}]}},
                "results": [{
                    "ruleId": "D1",
                    "message": {"text": "m"},
                    "locations": [{"physicalLocation": {
                        "artifactLocation": {"uri": "a.rs"},
                        "region": {"startLine": 0}
                    }}]
                }]
            }]
        }"#;
        let err = validate_sarif_2_1_0(zero_line).unwrap_err();
        assert!(err.contains("startLine"), "{err}");
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a": [1, {"b": "x\n\"y\" é"}], "c": null}"#).unwrap();
        let b = v.get("a").and_then(Json::as_arr).unwrap()[1].get("b").unwrap();
        assert_eq!(b.as_str(), Some("x\n\"y\" é"));
        assert!(parse_json("{\"a\": 1,}").is_err());
        assert!(parse_json("[1, 2] trailing").is_err());
    }
}
