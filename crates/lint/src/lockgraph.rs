//! The cross-file lock-acquisition graph behind lint D7.
//!
//! Every function's [`Acquisition`](crate::scopes::Acquisition) list
//! yields directed edges: holding lock `A` while acquiring lock `B`
//! adds `A -> B`, remembered with both acquisition sites so a finding
//! can print the full chains. Two sites anywhere in the workspace that
//! order the same pair of locks in opposite directions — or any longer
//! cycle — can deadlock under the right interleaving, so either fails
//! the build. Re-acquiring a lock that is already held is reported
//! directly (self-deadlock with `std::sync::Mutex`).

use std::collections::{BTreeMap, BTreeSet};

use crate::rules::{Finding, Lint};
use crate::scopes::WorkspaceScopes;

/// One `held -> acquired` observation with enough context to print the
/// chain: "`fn` takes `to` at `path:line` while holding `from` (taken
/// at line `from_line`)".
#[derive(Debug, Clone)]
pub struct Edge {
    /// The lock already held.
    pub from: String,
    /// The lock acquired under it.
    pub to: String,
    /// Repo-relative path of the inner acquisition.
    pub path: String,
    /// Line of the inner acquisition.
    pub line: u32,
    /// Line the outer lock was taken on.
    pub from_line: u32,
    /// Qualified name of the function containing both sites.
    pub func: String,
    /// Display names for the pair.
    pub from_display: String,
    /// Display name of the inner lock.
    pub to_display: String,
}

/// Collects nesting edges and immediate self-deadlocks.
#[must_use]
pub fn check(scopes: &WorkspaceScopes<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    // First observation wins per ordered identity pair (files arrive in
    // sorted workspace order, so this is deterministic).
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();

    for file in &scopes.files {
        for f in &file.functions {
            for (ai, a) in f.acquisitions.iter().enumerate() {
                for b in &f.acquisitions[ai + 1..] {
                    if !a.covers(b.site) {
                        continue;
                    }
                    if a.lock.identity == b.lock.identity {
                        findings.push(Finding {
                            lint: Lint::D7,
                            path: file.path.to_string(),
                            line: b.line,
                            token: format!("{} -> {}", a.lock.display, b.lock.display),
                            hint: format!(
                                "`{}` re-acquires `{}` (taken at line {}) while its guard is \
                                 still live — std::sync locks self-deadlock; drop the first \
                                 guard or restructure",
                                f.qualified(),
                                a.lock.display,
                                a.line
                            ),
                        });
                        continue;
                    }
                    let key = (a.lock.identity.clone(), b.lock.identity.clone());
                    edges.entry(key).or_insert_with(|| Edge {
                        from: a.lock.identity.clone(),
                        to: b.lock.identity.clone(),
                        path: file.path.to_string(),
                        line: b.line,
                        from_line: a.line,
                        func: f.qualified(),
                        from_display: a.lock.display.clone(),
                        to_display: b.lock.display.clone(),
                    });
                }
            }
        }
    }

    findings.extend(opposite_pairs(&edges));
    findings.extend(long_cycles(&edges));
    findings
}

/// A chain rendered for a hint: "Fn holds A (line x) then takes B at
/// path:line".
fn chain(e: &Edge) -> String {
    format!(
        "`{}` holds `{}` (line {}) then takes `{}` at {}:{}",
        e.func, e.from_display, e.from_line, e.to_display, e.path, e.line
    )
}

/// Two-lock inversions: `A -> B` somewhere and `B -> A` somewhere else.
fn opposite_pairs(edges: &BTreeMap<(String, String), Edge>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for ((from, to), e) in edges {
        if from >= to {
            continue; // visit each unordered pair once
        }
        let Some(rev) = edges.get(&(to.clone(), from.clone())) else { continue };
        // Report at the lexicographically later site so the finding is
        // stable no matter which direction was discovered first.
        let (site, other) =
            if (&e.path, e.line) >= (&rev.path, rev.line) { (e, rev) } else { (rev, e) };
        findings.push(Finding {
            lint: Lint::D7,
            path: site.path.clone(),
            line: site.line,
            token: format!("{} <-> {}", site.from_display, site.to_display),
            hint: format!(
                "lock-order inversion can deadlock: {} ; but {} — pick one global order",
                chain(site),
                chain(other)
            ),
        });
    }
    findings
}

/// Cycles of length >= 3 (pairs are reported by [`opposite_pairs`]).
fn long_cycles(edges: &BTreeMap<(String, String), Edge>) -> Vec<Finding> {
    let adj: BTreeMap<&String, Vec<&Edge>> = {
        let mut m: BTreeMap<&String, Vec<&Edge>> = BTreeMap::new();
        for e in edges.values() {
            m.entry(&e.from).or_default().push(e);
        }
        m
    };
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: BTreeSet<&String> = edges.values().flat_map(|e| [&e.from, &e.to]).collect();
    for start in nodes {
        let mut path: Vec<&Edge> = Vec::new();
        dfs(start, start, &adj, &mut path, &mut BTreeSet::new(), &mut |cycle| {
            if cycle.len() < 3 {
                return;
            }
            // Canonicalize by rotating the smallest identity first.
            let ids: Vec<String> = cycle.iter().map(|e| e.from.clone()).collect();
            let min = ids.iter().enumerate().min_by_key(|(_, s)| *s).map_or(0, |(i, _)| i);
            let canon: Vec<String> = ids[min..].iter().chain(ids[..min].iter()).cloned().collect();
            if !reported.insert(canon) {
                return;
            }
            let last = cycle[cycle.len() - 1];
            findings.push(Finding {
                lint: Lint::D7,
                path: last.path.clone(),
                line: last.line,
                token: cycle
                    .iter()
                    .map(|e| e.from_display.clone())
                    .collect::<Vec<_>>()
                    .join(" -> "),
                hint: format!(
                    "lock-order cycle across {} locks can deadlock: {}",
                    cycle.len(),
                    cycle.iter().map(|e| chain(e)).collect::<Vec<_>>().join(" ; ")
                ),
            });
        });
    }
    findings
}

fn dfs<'a>(
    start: &String,
    at: &'a String,
    adj: &BTreeMap<&String, Vec<&'a Edge>>,
    path: &mut Vec<&'a Edge>,
    visited: &mut BTreeSet<&'a String>,
    report: &mut dyn FnMut(&[&Edge]),
) {
    let Some(outs) = adj.get(at) else { return };
    for e in outs {
        if e.to == *start {
            path.push(e);
            report(path);
            path.pop();
            continue;
        }
        if visited.contains(&e.to) || path.iter().any(|p| p.from == e.to) {
            continue;
        }
        path.push(e);
        dfs(start, &e.to, adj, path, visited, report);
        path.pop();
    }
    visited.insert(at);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scopes::analyze;

    fn findings_of(files: &[(&str, &str)]) -> Vec<Finding> {
        check(&analyze(files))
    }

    const LOCKS: &str = "pub struct S { a: Mutex<u32>, b: Mutex<u32>, c: Mutex<u32> }";

    #[test]
    fn opposite_nesting_across_files_is_one_finding_with_both_chains() {
        let one = "
            impl S { fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); } }
        ";
        let two = "
            impl S { fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); } }
        ";
        let got = findings_of(&[("s.rs", LOCKS), ("one.rs", one), ("two.rs", two)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].lint, Lint::D7);
        assert!(got[0].hint.contains("S::ab"), "{}", got[0].hint);
        assert!(got[0].hint.contains("S::ba"), "{}", got[0].hint);
        assert!(got[0].hint.contains("one.rs:"), "{}", got[0].hint);
        assert!(got[0].hint.contains("two.rs:"), "{}", got[0].hint);
    }

    #[test]
    fn consistent_order_is_clean_and_drop_breaks_nesting() {
        let src = "
            impl S {
                fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }
                fn also_ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }
                fn sequential(&self) { let g = self.b.lock(); drop(g); let h = self.a.lock(); }
            }
        ";
        assert_eq!(findings_of(&[("s.rs", LOCKS), ("f.rs", src)]), vec![]);
    }

    #[test]
    fn self_reacquire_is_reported() {
        let src = "impl S { fn f(&self) { let g = self.a.lock(); let h = self.a.lock(); } }";
        let got = findings_of(&[("s.rs", LOCKS), ("f.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].hint.contains("re-acquires"), "{}", got[0].hint);
    }

    #[test]
    fn three_lock_cycle_is_reported_once() {
        let src = "
            impl S {
                fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }
                fn bc(&self) { let g = self.b.lock(); let h = self.c.lock(); }
                fn ca(&self) { let g = self.c.lock(); let h = self.a.lock(); }
            }
        ";
        let got = findings_of(&[("s.rs", LOCKS), ("f.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].token.contains("->"), "{}", got[0].token);
        assert!(got[0].hint.contains("cycle across 3 locks"), "{}", got[0].hint);
    }
}
