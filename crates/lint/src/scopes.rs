//! Phase-two scope analysis: brace-tree segmentation, lock-identity
//! resolution, and guard-lifetime tracking over the lexed token stream.
//!
//! The token-local rules (D1–D6) never need to know *where* a token
//! sits; the concurrency rules (D7–D9) do. This pass walks each file's
//! significant tokens once, maintaining a context stack of `impl` /
//! `struct` / `fn` / plain blocks, and produces per-function facts:
//!
//! * **Lock identities.** A `Mutex`/`RwLock` struct field becomes a
//!   workspace-global identity `Struct.field` (resolved by unique field
//!   name, so `self.state.lock()` and `inner.spans.lock()` both land on
//!   the declaring struct). A `let v = Mutex::new(..)` local becomes a
//!   function-scoped identity.
//! * **Guard-returning helpers.** A method whose signature mentions a
//!   `MutexGuard`/`RwLock*Guard` and whose body acquires a known lock
//!   field (e.g. `RunCache::lock`) is itself treated as an acquisition
//!   site at every call site, resolved through the receiver's declared
//!   field type.
//! * **Guard extents.** Each acquisition records the sig-token range
//!   over which its guard is live: to the end of the enclosing block
//!   for `let`-bound guards (truncated by an explicit `drop(guard)`),
//!   the matched block for `if let`/`while let`/`match` bindings, and
//!   the end of the statement for temporaries.
//!
//! [`lockgraph`](crate::lockgraph) turns the acquisitions into a
//! cross-file lock-order graph (D7); [`rules`](crate::rules) layers the
//! blocking-under-guard (D8) and span-balance (D9) checks on top.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::test_regions;

/// A resolved lock.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockId {
    /// Workspace-unique key: `Struct.field` for fields,
    /// `path#fn::var` for function-local locks.
    pub identity: String,
    /// Short human-readable form (`RunCache.state`, `resume::writer`).
    pub display: String,
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Which lock is taken.
    pub lock: LockId,
    /// 1-based line of the acquisition call.
    pub line: u32,
    /// Sig-token index of the `lock`/`read`/`write`/helper token.
    pub site: usize,
    /// Sig-token index one past which the guard is no longer live.
    pub extent_end: usize,
    /// The guard binding name, when bound to a named variable/pattern.
    pub guard: Option<String>,
}

impl Acquisition {
    /// Whether the guard is live at sig index `i` (strictly after the
    /// acquisition site).
    #[must_use]
    pub fn covers(&self, i: usize) -> bool {
        i > self.site && i < self.extent_end
    }
}

/// One `fn` item with its body range and resolved acquisitions.
#[derive(Debug, Clone)]
pub struct FnScope {
    /// The function's name.
    pub name: String,
    /// The `impl` target type, when the fn sits inside an impl block.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Sig-token index of the `fn` keyword.
    pub sig_start: usize,
    /// Sig-token indices of the body's `{` and `}`.
    pub body: (usize, usize),
    /// Every identifier appearing in the parameter list (used to exempt
    /// span-start values passed in from a caller).
    pub params: Vec<String>,
    /// Locals bound directly to `Mutex::new`/`RwLock::new`.
    pub local_locks: Vec<String>,
    /// Resolved lock acquisitions, in source order.
    pub acquisitions: Vec<Acquisition>,
}

impl FnScope {
    /// `Owner::name` when inside an impl, else just `name`.
    #[must_use]
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One parsed file: its significant tokens plus structural facts.
#[derive(Debug)]
pub struct FileScopes<'a> {
    /// Repo-relative path.
    pub path: &'a str,
    /// The file's source (token spans index into this).
    pub src: &'a str,
    /// Significant tokens (whitespace/comments dropped).
    pub sig: Vec<Token>,
    /// Per-sig-token `#[cfg(test)]` membership.
    pub in_test: Vec<bool>,
    /// Every `fn` item, in source order.
    pub functions: Vec<FnScope>,
    /// `(struct, field, head type ident)` for every named struct field.
    fields: Vec<(String, String, String)>,
}

impl FileScopes<'_> {
    /// Text of sig token `i`.
    #[must_use]
    pub fn text(&self, i: usize) -> &str {
        self.sig[i].text(self.src)
    }
}

/// The workspace-wide analysis: per-file scopes plus the global lock
/// and helper maps they were resolved against.
#[derive(Debug)]
pub struct WorkspaceScopes<'a> {
    /// One entry per input file, same order.
    pub files: Vec<FileScopes<'a>>,
}

/// Analyzes `(path, source)` pairs. Resolution is workspace-global:
/// lock fields declared in one file resolve acquisitions in another.
#[must_use]
pub fn analyze<'a>(files: &[(&'a str, &'a str)]) -> WorkspaceScopes<'a> {
    let mut parsed: Vec<FileScopes<'a>> = files.iter().map(|(p, s)| parse_file(p, s)).collect();

    // Global lock-field map: field name -> declaring structs. Only
    // unique names resolve; a collision would make identities ambiguous
    // so colliding fields are skipped (conservative: no finding).
    let mut lock_fields: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    // All field types, for typing helper-call receivers.
    let mut field_types: BTreeMap<(String, String), String> = BTreeMap::new();
    for file in &parsed {
        for (sname, fname, head) in &file.fields {
            field_types.insert((sname.clone(), fname.clone()), head.clone());
            if head == "Mutex" || head == "RwLock" {
                lock_fields.entry(fname.clone()).or_default().insert(sname.clone());
            }
        }
    }
    let unique_lock_field = |name: &str| -> Option<LockId> {
        let structs = lock_fields.get(name)?;
        if structs.len() != 1 {
            return None;
        }
        let id = format!("{}.{name}", structs.iter().next()?);
        Some(LockId { identity: id.clone(), display: id })
    };

    // Guard-returning helpers: (receiver type, method) -> lock.
    let mut helpers: BTreeMap<(String, String), LockId> = BTreeMap::new();
    for file in &parsed {
        for f in &file.functions {
            let Some(owner) = &f.owner else { continue };
            let sig_names = (f.sig_start..f.body.0).map(|i| file.text(i));
            if !sig_names
                .clone()
                .any(|t| matches!(t, "MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard"))
            {
                continue;
            }
            // The helper's body must acquire a resolvable lock field.
            for m in f.body.0 + 1..f.body.1 {
                if !matches!(file.text(m), "lock" | "read" | "write")
                    || file.sig.get(m + 1).map(|t| t.text(file.src)) != Some("(")
                {
                    continue;
                }
                let chain = receiver_chain(file, m);
                if let Some(last) = chain.last() {
                    if let Some(lock) = unique_lock_field(last) {
                        helpers.insert((owner.clone(), f.name.clone()), lock);
                        break;
                    }
                }
            }
        }
    }

    // Acquisition resolution.
    for file in &mut parsed {
        let brace_close = brace_pairs(file);
        let fns = std::mem::take(&mut file.functions);
        let mut resolved = Vec::with_capacity(fns.len());
        for mut f in fns {
            f.acquisitions =
                resolve_acquisitions(file, &f, &brace_close, &unique_lock_field, &helpers);
            resolved.push(f);
        }
        file.functions = resolved;
    }

    WorkspaceScopes { files: parsed }
}

/// The dotted identifier chain ending at the method token `m`
/// (`self.state.lock` -> `["self", "state"]`). Empty when the receiver
/// is not a plain ident chain (e.g. `stdout().lock()`).
fn receiver_chain(file: &FileScopes<'_>, m: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = m;
    while j >= 2
        && file.text(j - 1) == "."
        && file.sig[j - 2].kind == TokenKind::Ident
        // A `::` path (`thread::sleep`) or a chained call (`x().lock()`)
        // is not a field chain.
        && (j < 3 || file.text(j - 3) != ":")
    {
        chain.push(file.text(j - 2).to_string());
        j -= 2;
    }
    // Reject chains hanging off a non-ident receiver: `x().a.lock()`.
    if j >= 1 && matches!(file.text(j - 1), ")" | "]") {
        return Vec::new();
    }
    chain.reverse();
    chain
}

/// Maps each `{` sig index to its matching `}` (unbalanced opens close
/// at end of file).
fn brace_pairs(file: &FileScopes<'_>) -> BTreeMap<usize, usize> {
    let mut pairs = BTreeMap::new();
    let mut stack = Vec::new();
    for i in 0..file.sig.len() {
        match file.text(i) {
            "{" => stack.push(i),
            "}" => {
                if let Some(open) = stack.pop() {
                    pairs.insert(open, i);
                }
            }
            _ => {}
        }
    }
    let eof = file.sig.len();
    for open in stack {
        pairs.insert(open, eof);
    }
    pairs
}

/// Index of the innermost `{` enclosing sig index `i` within `body`.
fn enclosing_open(file: &FileScopes<'_>, body: (usize, usize), i: usize) -> usize {
    let mut open = body.0;
    let mut stack = vec![body.0];
    for j in body.0 + 1..i {
        match file.text(j) {
            "{" => stack.push(j),
            "}" => {
                stack.pop();
            }
            _ => {}
        }
    }
    if let Some(&top) = stack.last() {
        open = top;
    }
    open
}

struct Pending {
    kind: PendingKind,
}

enum PendingKind {
    Impl(String),
    Struct(String),
    Fn { name: String, line: u32, sig_start: usize, params: Vec<String> },
}

enum Ctx {
    Impl(String),
    Struct(String),
    Fn(usize),
    Block,
}

/// Structural scan: functions, struct fields, local locks.
fn parse_file<'a>(path: &'a str, src: &'a str) -> FileScopes<'a> {
    let tokens = lex(src);
    let sig: Vec<Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .copied()
        .collect();
    let refs: Vec<&Token> = sig.iter().collect();
    let in_test = test_regions(&refs, src);

    let text = |i: usize| -> &str { sig[i].text(src) };
    let n = sig.len();

    let mut ctx: Vec<Ctx> = Vec::new();
    let mut functions: Vec<FnScope> = Vec::new();
    let mut fields: Vec<(String, String, String)> = Vec::new();
    let mut pending: Option<Pending> = None;
    // (var name, ctx depth when opened) for `let` bindings awaiting `;`.
    let mut pending_lets: Vec<(String, usize)> = Vec::new();

    let innermost_fn = |ctx: &[Ctx]| -> Option<usize> {
        ctx.iter().rev().find_map(|c| if let Ctx::Fn(k) = c { Some(*k) } else { None })
    };
    let current_impl = |ctx: &[Ctx]| -> Option<String> {
        ctx.iter().rev().find_map(|c| if let Ctx::Impl(s) = c { Some(s.clone()) } else { None })
    };

    let mut i = 0usize;
    while i < n {
        if sig[i].kind == TokenKind::Ident {
            match text(i) {
                "impl" => {
                    pending = Some(Pending { kind: PendingKind::Impl(impl_target(&sig, src, i)) });
                }
                "struct" if i + 1 < n && sig[i + 1].kind == TokenKind::Ident => {
                    pending = Some(Pending { kind: PendingKind::Struct(text(i + 1).to_string()) });
                }
                "fn" if i + 1 < n && sig[i + 1].kind == TokenKind::Ident => {
                    pending = Some(Pending {
                        kind: PendingKind::Fn {
                            name: text(i + 1).to_string(),
                            line: sig[i].line,
                            sig_start: i,
                            params: fn_params(&sig, src, i + 1),
                        },
                    });
                }
                "let" => {
                    let mut j = i + 1;
                    if j < n && text(j) == "mut" {
                        j += 1;
                    }
                    // Plain `let name =` only; `let Ok(..)`/`let (a, b)`
                    // patterns never bind a lock directly.
                    if j < n
                        && sig[j].kind == TokenKind::Ident
                        && text(j) != "_"
                        && sig.get(j + 1).map(|t| t.text(src)) != Some("(")
                    {
                        pending_lets.push((text(j).to_string(), ctx.len()));
                    }
                }
                "Mutex" | "RwLock"
                    if i + 3 < n
                        && text(i + 1) == ":"
                        && text(i + 2) == ":"
                        && text(i + 3) == "new" =>
                {
                    if let (Some(k), Some((var, _))) = (innermost_fn(&ctx), pending_lets.last()) {
                        functions[k].local_locks.push(var.clone());
                    }
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        match text(i) {
            "{" => {
                let c = match pending.take().map(|p| p.kind) {
                    Some(PendingKind::Fn { name, line, sig_start, params }) => {
                        functions.push(FnScope {
                            name,
                            owner: current_impl(&ctx),
                            line,
                            sig_start,
                            body: (i, n.saturating_sub(1)),
                            params,
                            local_locks: Vec::new(),
                            acquisitions: Vec::new(),
                        });
                        Ctx::Fn(functions.len() - 1)
                    }
                    Some(PendingKind::Struct(s)) => Ctx::Struct(s),
                    Some(PendingKind::Impl(s)) => Ctx::Impl(s),
                    None => Ctx::Block,
                };
                ctx.push(c);
            }
            "}" => {
                if let Some(Ctx::Fn(k)) = ctx.pop() {
                    functions[k].body.1 = i;
                }
                let depth = ctx.len();
                pending_lets.retain(|(_, d)| *d <= depth);
            }
            ";" => {
                pending = None;
                let depth = ctx.len();
                pending_lets.retain(|(_, d)| *d < depth);
            }
            ":" => {
                // A struct-field colon (single `:`, directly inside a
                // struct body, preceded by the field name).
                if let Some(Ctx::Struct(sname)) = ctx.last() {
                    let single = i >= 1
                        && sig[i - 1].kind == TokenKind::Ident
                        && sig.get(i + 1).map(|t| t.text(src)) != Some(":")
                        && (i < 2 || text(i - 2) != ":");
                    if single {
                        if let Some(head) = field_type_head(&sig, src, i + 1) {
                            fields.push((sname.clone(), text(i - 1).to_string(), head));
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    FileScopes { path, src, sig, in_test, functions, fields }
}

/// The impl target type: `impl Foo<T>` -> `Foo`,
/// `impl Trait for crate::Bar` -> `Bar`.
fn impl_target(sig: &[Token], src: &str, impl_idx: usize) -> String {
    let n = sig.len();
    let mut j = impl_idx + 1;
    // Skip `impl<..>` generics.
    if j < n && sig[j].text(src) == "<" {
        let mut depth = 0i32;
        while j < n {
            match sig[j].text(src) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    let mut cur: Vec<&str> = Vec::new();
    let mut angle = 0i32;
    while j < n {
        let t = sig[j].text(src);
        match t {
            "{" | "where" => break,
            "<" => angle += 1,
            ">" => angle -= 1,
            "for" if angle == 0 => cur.clear(),
            _ if angle == 0 && sig[j].kind == TokenKind::Ident => cur.push(t),
            _ => {}
        }
        j += 1;
    }
    cur.last().map_or_else(|| "?".to_string(), |s| (*s).to_string())
}

/// Every identifier inside the fn's parameter parens (a superset of the
/// parameter names; used only as an exemption set).
fn fn_params(sig: &[Token], src: &str, name_idx: usize) -> Vec<String> {
    let n = sig.len();
    let mut j = name_idx;
    while j < n && sig[j].text(src) != "(" {
        if matches!(sig[j].text(src), "{" | ";") {
            return Vec::new();
        }
        j += 1;
    }
    let mut params = Vec::new();
    let mut depth = 0i32;
    while j < n {
        match sig[j].text(src) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            t if sig[j].kind == TokenKind::Ident => params.push(t.to_string()),
            _ => {}
        }
        j += 1;
    }
    params
}

/// The head type ident of a field whose `:` sits just before
/// `start` — the last path ident before generics or the field end
/// (`std::sync::Mutex<..>` -> `Mutex`, `&'a RunCache` -> `RunCache`).
fn field_type_head(sig: &[Token], src: &str, start: usize) -> Option<String> {
    let mut head = None;
    for tok in &sig[start..] {
        match tok.text(src) {
            "<" | "," | "}" | "(" => break,
            t if tok.kind == TokenKind::Ident && t != "dyn" && t != "mut" => {
                head = Some(t.to_string());
            }
            _ => {}
        }
    }
    head
}

/// Finds and classifies every lock acquisition in `f`'s body.
fn resolve_acquisitions(
    file: &FileScopes<'_>,
    f: &FnScope,
    brace_close: &BTreeMap<usize, usize>,
    unique_lock_field: &dyn Fn(&str) -> Option<LockId>,
    helpers: &BTreeMap<(String, String), LockId>,
) -> Vec<Acquisition> {
    let mut out: Vec<Acquisition> = Vec::new();
    let (open, close) = f.body;
    // `(struct, field)` head types for helper receiver typing are folded
    // into `helpers` lookups through the owner's declared fields below.
    for m in open + 1..close {
        if file.in_test[m]
            || file.sig[m].kind != TokenKind::Ident
            || file.sig.get(m + 1).map(|t| t.text(file.src)) != Some("(")
        {
            continue;
        }
        let name = file.text(m);
        let chain = receiver_chain(file, m);
        if chain.is_empty() {
            continue;
        }
        let lock = resolve_lock(file, f, name, &chain, unique_lock_field, helpers);
        let Some(lock) = lock else { continue };
        let r = m - 2 * chain.len();
        let (guard, extent_end) = classify_binding(file, f, brace_close, r, m);
        out.push(Acquisition { lock, line: file.sig[m].line, site: m, extent_end, guard });
    }
    // Explicit `drop(guard)` truncates the extent.
    for m in open + 1..close {
        if file.text(m) == "drop"
            && file.sig.get(m + 1).map(|t| t.text(file.src)) == Some("(")
            && file.sig.get(m + 3).map(|t| t.text(file.src)) == Some(")")
        {
            if let Some(var) = file.sig.get(m + 2) {
                let var = var.text(file.src);
                for a in &mut out {
                    if a.guard.as_deref() == Some(var) && a.site < m && m < a.extent_end {
                        a.extent_end = m;
                    }
                }
            }
        }
    }
    out
}

/// Resolution order: unique lock field, then function-local lock, then
/// guard-returning helper (typed through the receiver chain).
fn resolve_lock(
    file: &FileScopes<'_>,
    f: &FnScope,
    method: &str,
    chain: &[String],
    unique_lock_field: &dyn Fn(&str) -> Option<LockId>,
    helpers: &BTreeMap<(String, String), LockId>,
) -> Option<LockId> {
    let lockish = matches!(method, "lock" | "read" | "write");
    if lockish {
        if let Some(last) = chain.last() {
            if last != "self" {
                if let Some(lock) = unique_lock_field(last) {
                    return Some(lock);
                }
            }
        }
        if chain.len() == 1 && f.local_locks.contains(&chain[0]) {
            let var = &chain[0];
            return Some(LockId {
                identity: format!("{}#{}::{var}", file.path, f.name),
                display: format!("{}::{var}", f.name),
            });
        }
    }
    // Helper call: receiver type is the owner (`self.h()`) or a field's
    // declared head type (`self.cache.h()`).
    let recv_type = match chain {
        [s] if s == "self" => f.owner.clone(),
        [s, field] if s == "self" => {
            let owner = f.owner.as_ref()?;
            file.fields.iter().find(|(st, fl, _)| st == owner && fl == field).map(|t| t.2.clone())
        }
        _ => None,
    }?;
    helpers.get(&(recv_type, method.to_string())).cloned()
}

/// Determines the guard binding and live extent for the acquisition
/// whose receiver starts at sig index `r` and method sits at `m`.
fn classify_binding(
    file: &FileScopes<'_>,
    f: &FnScope,
    brace_close: &BTreeMap<usize, usize>,
    r: usize,
    m: usize,
) -> (Option<String>, usize) {
    let prev = |k: usize| -> Option<&str> { k.checked_sub(1).map(|p| file.text(p)) };
    let block_end_of = |i: usize| -> usize {
        let open = enclosing_open(file, f.body, i);
        brace_close.get(&open).copied().unwrap_or(f.body.1)
    };
    match prev(r) {
        Some("=") => {
            // `let [mut] name = ..` / `name = ..` -> named, live to the
            // end of the enclosing block. `if/while let Ok(g) = ..` ->
            // pattern, live over the following block.
            if r >= 2 && file.text(r - 2) == ")" {
                let guard = pattern_binding_name(file, r - 2);
                let end = following_block_end(file, brace_close, m)
                    .unwrap_or_else(|| statement_end(file, f, m));
                (guard, end)
            } else if r >= 2 && file.sig[r - 2].kind == TokenKind::Ident {
                (Some(file.text(r - 2).to_string()), block_end_of(r))
            } else {
                (None, block_end_of(r))
            }
        }
        Some("match") => {
            let end = following_block_end(file, brace_close, m)
                .unwrap_or_else(|| statement_end(file, f, m));
            (None, end)
        }
        _ => (None, statement_end(file, f, m)),
    }
}

/// The binding ident inside a `Ok(mut g)`-style pattern whose `)` sits
/// at `close`.
fn pattern_binding_name(file: &FileScopes<'_>, close: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut k = close;
    let mut name = None;
    loop {
        match file.text(k) {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            t if file.sig[k].kind == TokenKind::Ident && t != "mut" => {
                name = Some(t.to_string());
            }
            _ => {}
        }
        if k == 0 {
            break;
        }
        k -= 1;
    }
    name
}

/// The `}` closing the block that directly follows the call whose
/// argument list opens at `m + 1` (for `if let .. = x.lock() { .. }`
/// and `match x.lock() { .. }` shapes).
fn following_block_end(
    file: &FileScopes<'_>,
    brace_close: &BTreeMap<usize, usize>,
    m: usize,
) -> Option<usize> {
    let mut j = m + 1;
    let mut depth = 0i32;
    // Skip the call's own parens.
    while j < file.sig.len() {
        match file.text(j) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    // Then walk trailing method chains until the block opens.
    while j < file.sig.len() {
        match file.text(j) {
            "{" => return brace_close.get(&j).copied(),
            ";" => return None,
            "(" => {
                // Chained call: skip its parens too.
                let mut d = 0i32;
                while j < file.sig.len() {
                    match file.text(j) {
                        "(" => d += 1,
                        ")" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// First `;` at nesting depth 0 after the call at `m` (temporaries die
/// at the end of their statement), bounded by the fn body.
fn statement_end(file: &FileScopes<'_>, f: &FnScope, m: usize) -> usize {
    let mut depth = 0i32;
    for j in m..f.body.1 {
        match file.text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth <= 0 => return j,
            _ => {}
        }
    }
    f.body.1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws<'a>(src: &'a str) -> WorkspaceScopes<'a> {
        analyze(&[("crates/demo/src/lib.rs", src)])
    }

    #[test]
    fn resolves_struct_lock_fields_through_self_and_locals() {
        let src = "
            pub struct Store { state: Mutex<Inner>, cond: Condvar }
            impl Store {
                fn probe(&self) {
                    let mut state = self.state.lock();
                    state.touch();
                }
            }
            fn local() {
                let writer = Mutex::new(0);
                let w = writer.lock();
            }
        ";
        let w = ws(src);
        let probe = &w.files[0].functions[0];
        assert_eq!(probe.qualified(), "Store::probe");
        assert_eq!(probe.acquisitions.len(), 1);
        assert_eq!(probe.acquisitions[0].lock.identity, "Store.state");
        assert_eq!(probe.acquisitions[0].guard.as_deref(), Some("state"));
        let local = &w.files[0].functions[1];
        assert_eq!(local.acquisitions.len(), 1);
        assert!(local.acquisitions[0].lock.identity.ends_with("#local::writer"));
        assert_eq!(local.acquisitions[0].lock.display, "local::writer");
    }

    #[test]
    fn guard_helpers_resolve_at_call_sites_via_field_types() {
        let src = "
            pub struct Store { state: Mutex<Inner> }
            impl Store {
                fn lock(&self) -> MutexGuard<'_, Inner> {
                    match self.state.lock() { Ok(g) => g, Err(p) => p.into_inner() }
                }
                fn direct(&self) { let g = self.lock(); g.touch(); }
            }
            pub struct Lease<'a> { cache: &'a Store }
            impl Drop for Lease<'_> {
                fn drop(&mut self) { let g = self.cache.lock(); g.touch(); }
            }
        ";
        let w = ws(src);
        let direct = &w.files[0].functions[1];
        assert_eq!(direct.acquisitions.len(), 1, "{:?}", direct.acquisitions);
        assert_eq!(direct.acquisitions[0].lock.identity, "Store.state");
        let lease_drop = &w.files[0].functions[2];
        assert_eq!(lease_drop.owner.as_deref(), Some("Lease"));
        assert_eq!(lease_drop.acquisitions.len(), 1, "{:?}", lease_drop.acquisitions);
        assert_eq!(lease_drop.acquisitions[0].lock.identity, "Store.state");
    }

    #[test]
    fn extents_follow_bindings_and_drop() {
        let src = "
            pub struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                fn f(&self) {
                    let g = self.a.lock();
                    drop(g);
                    let h = self.b.lock();
                    h.touch();
                }
                fn pat(&self) {
                    if let Ok(mut g) = self.a.lock() {
                        g.touch();
                    }
                    self.b.lock();
                }
            }
        ";
        let w = ws(src);
        let f = &w.files[0].functions[0];
        let (a, b) = (&f.acquisitions[0], &f.acquisitions[1]);
        assert!(a.extent_end < b.site, "drop(g) must end a's extent before b");
        let pat = &w.files[0].functions[1];
        let a = &pat.acquisitions[0];
        assert_eq!(a.guard.as_deref(), Some("g"));
        let b = &pat.acquisitions[1];
        assert!(a.extent_end < b.site, "if-let guard dies at its block: {a:?} vs {b:?}");
    }

    #[test]
    fn cross_file_field_resolution_and_test_exemption() {
        let a = "pub struct Reg { spans: Mutex<Vec<u32>> }";
        let b = "
            fn record(inner: &Reg) { let mut spans = inner.spans.lock(); spans.push(1); }
            #[cfg(test)]
            mod tests {
                fn t(inner: &Reg) { let g = inner.spans.lock(); }
            }
        ";
        let w = analyze(&[("a.rs", a), ("b.rs", b)]);
        let record = &w.files[1].functions[0];
        assert_eq!(record.acquisitions.len(), 1);
        assert_eq!(record.acquisitions[0].lock.identity, "Reg.spans");
        let test_fn = &w.files[1].functions[1];
        assert_eq!(test_fn.acquisitions.len(), 0, "test code is exempt");
    }

    #[test]
    fn chained_and_pathy_receivers_are_not_acquisitions() {
        let src = "
            fn f() {
                let out = std::io::stdout().lock();
                let joined = parts.join(\", \");
            }
        ";
        let w = ws(src);
        assert_eq!(w.files[0].functions[0].acquisitions.len(), 0);
    }
}
