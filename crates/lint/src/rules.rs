//! The six domain lints (D1–D6) over a lexed token stream.
//!
//! Every rule works on [`lex`](crate::lexer::lex) output, so comments,
//! doc comments, and string/raw-string literals can never trigger a
//! finding, and `#[cfg(test)]` items are recognized and exempted where
//! the policy allows test-only code more latitude.
//!
//! | lint | invariant                                                        |
//! |------|------------------------------------------------------------------|
//! | D1   | no nondeterminism sources in crates that feed `RunRecord` output |
//! | D2   | no `unwrap`/`expect`/`panic!`/`todo!` in non-test library code   |
//! | D3   | no truncating casts on cycle/energy/MAC counters                 |
//! | D4   | `unsafe` only in the explicit allowlist                          |
//! | D5   | every `impl Engine` file validates operand finiteness            |
//! | D6   | harness persistence code writes files atomically (temp+rename)   |

use crate::lexer::{lex, Token, TokenKind};

/// Which rule produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Nondeterminism source (`HashMap`, `Instant`, `std::time`, ...) in
    /// a determinism-critical crate.
    D1,
    /// `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library
    /// code outside `#[cfg(test)]`.
    D2,
    /// Truncating `as` cast on a cycle/energy/MAC counter expression.
    D3,
    /// `unsafe` outside the allowlist.
    D4,
    /// An `impl Engine` without operand finiteness validation.
    D5,
    /// A non-atomic file write (`File::create`/`fs::write` straight to
    /// the target path) in harness persistence code, where a crash
    /// mid-write must never corrupt a journal or result artifact.
    D6,
}

impl Lint {
    /// The lint's short name (`"D1"`...).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Lint::D1 => "D1",
            Lint::D2 => "D2",
            Lint::D3 => "D3",
            Lint::D4 => "D4",
            Lint::D5 => "D5",
            Lint::D6 => "D6",
        }
    }

    /// Parses `"D1"`..`"D6"` (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Lint> {
        match s.to_ascii_uppercase().as_str() {
            "D1" => Some(Lint::D1),
            "D2" => Some(Lint::D2),
            "D3" => Some(Lint::D3),
            "D4" => Some(Lint::D4),
            "D5" => Some(Lint::D5),
            "D6" => Some(Lint::D6),
            _ => None,
        }
    }
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: where, which rule, what token, and how to fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub lint: Lint,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// The offending token text.
    pub token: String,
    /// Human-readable fix hint.
    pub hint: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: `{}` — {}", self.path, self.line, self.lint, self.token, self.hint)
    }
}

/// What kind of target a file belongs to, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Part of a crate's library target (`src/` minus `src/bin`).
    Lib,
    /// A binary target (`src/bin/*` or `src/main.rs`).
    Bin,
    /// Integration tests, benches, or examples.
    TestOrBench,
}

/// Per-file lint policy, derived from the workspace layout by
/// [`Workspace`](crate::analyzer::Workspace).
#[derive(Debug, Clone)]
pub struct FilePolicy {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// Role of the file in its crate.
    pub role: FileRole,
    /// Whether D1 applies (determinism-critical crate, library code).
    pub determinism_critical: bool,
    /// Whether this file may contain `unsafe` (D4 allowlist).
    pub unsafe_allowed: bool,
}

/// Identifiers whose presence in determinism-critical code means the
/// output can depend on something other than the inputs.
const D1_IDENTS: &[&str] = &[
    "HashMap",
    "HashSet",
    "RandomState",
    "DefaultHasher",
    "Instant",
    "SystemTime",
    "ThreadId",
    "thread_rng",
];

/// Method names that panic on `Err`/`None`.
const D2_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that abort the simulation instead of reporting an error.
const D2_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Cast targets that can truncate a 64-bit counter.
const D3_NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Identifier segments that mark a counter expression (split on `_`).
const COUNTER_SEGMENTS: &[&str] =
    &["cycle", "cycles", "mac", "macs", "energy", "joule", "joules", "pj", "nj", "latency"];

/// Library code under this prefix owns durable artifacts (the run
/// journal, sweep exports) and must write them atomically (lint D6):
/// write a temp sibling, sync, rename over the target.
const D6_ATOMIC_WRITE_PREFIX: &str = "crates/bench/src/harness/";

/// Runs every applicable rule over one file's source.
#[must_use]
pub fn check_file(policy: &FilePolicy, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    // Significant tokens only (no whitespace/comments); rules reason over
    // these, and map back to lines through the retained spans.
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let in_test = test_regions(&sig, src);

    let mut findings = Vec::new();
    let lib_code = policy.role == FileRole::Lib;

    for (i, tok) in sig.iter().enumerate() {
        let text = tok.text(src);
        let test_code = in_test[i];

        // D4: unsafe anywhere (test or not) outside the allowlist.
        if tok.kind == TokenKind::Ident && text == "unsafe" && !policy.unsafe_allowed {
            findings.push(Finding {
                lint: Lint::D4,
                path: policy.path.clone(),
                line: tok.line,
                token: text.to_string(),
                hint: "unsafe is allowed only in lint.toml-allowlisted files; rewrite safely or \
                       extend the allowlist with a reason"
                    .into(),
            });
        }

        if test_code {
            continue;
        }

        // D1: nondeterminism sources in determinism-critical library code.
        if policy.determinism_critical && lib_code && tok.kind == TokenKind::Ident {
            if D1_IDENTS.contains(&text) {
                findings.push(Finding {
                    lint: Lint::D1,
                    path: policy.path.clone(),
                    line: tok.line,
                    token: text.to_string(),
                    hint: d1_hint(text).into(),
                });
            } else if text == "time" && path_prefix_is(&sig, src, i, "std")
                || text == "current" && path_prefix_is(&sig, src, i, "thread")
            {
                findings.push(Finding {
                    lint: Lint::D1,
                    path: policy.path.clone(),
                    line: tok.line,
                    token: qualified_tail(&sig, src, i),
                    hint: "wall-clock and thread identity must not reach cycle accounting; \
                           derive everything from the inputs and the seed"
                        .into(),
                });
            }
        }

        // D2: panicking constructs in non-test library code.
        if lib_code && tok.kind == TokenKind::Ident {
            let prev_dot = i > 0 && sig[i - 1].text(src) == ".";
            let next = sig.get(i + 1).map(|t| t.text(src));
            if D2_METHODS.contains(&text) && prev_dot && next == Some("(") {
                findings.push(Finding {
                    lint: Lint::D2,
                    path: policy.path.clone(),
                    line: tok.line,
                    token: format!(".{text}()"),
                    hint: "library code must not panic: propagate with `?`, return an \
                           EngineError/SigmaError, or use an infallible fallback"
                        .into(),
                });
            } else if D2_MACROS.contains(&text) && next == Some("!") {
                findings.push(Finding {
                    lint: Lint::D2,
                    path: policy.path.clone(),
                    line: tok.line,
                    token: format!("{text}!"),
                    hint: "library code must not panic: return an error variant instead".into(),
                });
            }
        }

        // D3: truncating casts on counter expressions.
        if lib_code && tok.kind == TokenKind::Ident && text == "as" {
            if let Some(finding) = check_cast(policy, &sig, src, i) {
                findings.push(finding);
            }
        }

        // D6: non-atomic writes in harness persistence library code.
        // Writing a temp sibling first (any argument identifier naming
        // `tmp`/`temp`) is the sanctioned half of write-then-rename.
        if lib_code
            && policy.path.starts_with(D6_ATOMIC_WRITE_PREFIX)
            && tok.kind == TokenKind::Ident
            && (text == "create" && path_prefix_is(&sig, src, i, "File")
                || text == "write" && path_prefix_is(&sig, src, i, "fs"))
            && sig.get(i + 1).map(|t| t.text(src)) == Some("(")
            && !call_args_mention_temp(&sig, src, i + 1)
        {
            findings.push(Finding {
                lint: Lint::D6,
                path: policy.path.clone(),
                line: tok.line,
                token: qualified_tail(&sig, src, i),
                hint: "a crash mid-write must never corrupt a durable artifact: write a temp \
                       sibling, sync, and rename over the target (see JournalWriter::compact), \
                       or carry a lint.toml waiver"
                    .into(),
            });
        }
    }

    // D5: files that implement Engine must validate finiteness somewhere.
    if lib_code {
        findings.extend(check_engine_impls(policy, &sig, src, &in_test));
    }

    findings
}

fn d1_hint(ident: &str) -> &'static str {
    match ident {
        "HashMap" | "HashSet" => {
            "iteration order is seeded per-process (RandomState); use BTreeMap/BTreeSet or a \
             sorted Vec so routing, caching, and exports are reproducible"
        }
        "RandomState" | "DefaultHasher" => {
            "RandomState hashes differ across processes; use a deterministic container or hasher"
        }
        "Instant" | "SystemTime" => {
            "wall-clock reads make cycle output depend on the host; count simulated cycles only"
        }
        "ThreadId" => "thread identity varies across schedulers; key data on deterministic ids",
        "thread_rng" => "thread_rng is seeded from the OS; thread a SplitMix64 seed through",
        _ => "nondeterminism source; derive everything from inputs and the seed",
    }
}

/// Whether the `::`-path before `sig[i]` starts with `prefix` (e.g.
/// `std :: time` for `path_prefix_is(.., "std")` at the `time` token).
fn path_prefix_is(sig: &[&Token], src: &str, i: usize, prefix: &str) -> bool {
    i >= 3
        && sig[i - 1].text(src) == ":"
        && sig[i - 2].text(src) == ":"
        && sig[i - 3].text(src) == prefix
}

/// D6: whether the call whose `(` sits at `sig[open]` names a temp
/// file — any argument identifier containing `tmp`/`temp` marks the
/// write as the temp half of a write-then-rename sequence.
fn call_args_mention_temp(sig: &[&Token], src: &str, open: usize) -> bool {
    let mut depth = 0usize;
    for tok in sig.iter().skip(open) {
        match tok.text(src) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            t if tok.kind == TokenKind::Ident => {
                let lower = t.to_ascii_lowercase();
                if lower.contains("tmp") || lower.contains("temp") {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// Renders `prefix::tail` for a path finding (e.g. `std::time`).
fn qualified_tail(sig: &[&Token], src: &str, i: usize) -> String {
    if i >= 3 {
        format!("{}::{}", sig[i - 3].text(src), sig[i].text(src))
    } else {
        sig[i].text(src).to_string()
    }
}

/// Marks, for each significant token, whether it sits inside a
/// `#[cfg(test)]`-gated item (attribute included).
fn test_regions(sig: &[&Token], src: &str) -> Vec<bool> {
    let mut flags = vec![false; sig.len()];
    let mut i = 0usize;
    while i < sig.len() {
        if sig[i].text(src) == "#" && sig.get(i + 1).map(|t| t.text(src)) == Some("[") {
            let (end, is_test) = scan_attribute(sig, src, i + 1);
            if is_test {
                // Mark the attribute, any stacked attributes, and the
                // gated item through its closing brace or semicolon.
                let mut j = end + 1;
                // Skip further attributes on the same item.
                while j < sig.len()
                    && sig[j].text(src) == "#"
                    && sig.get(j + 1).map(|t| t.text(src)) == Some("[")
                {
                    let (e, _) = scan_attribute(sig, src, j + 1);
                    j = e + 1;
                }
                // Find the item body: first `{` (block) or `;` (statement).
                let mut depth = 0usize;
                while j < sig.len() {
                    match sig[j].text(src) {
                        "{" => {
                            depth += 1;
                        }
                        "}" => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                break;
                            }
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let region_end = j.min(sig.len().saturating_sub(1));
                for f in flags.iter_mut().take(region_end + 1).skip(i) {
                    *f = true;
                }
                i = j + 1;
                continue;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
    flags
}

/// Scans the attribute starting at the `[` at `open`. Returns the index
/// of the matching `]` and whether the attribute gates on `test`
/// (`cfg(test)`, `cfg(all(test, ..))` — but not `cfg(not(test))` and not
/// `cfg_attr(..)`).
fn scan_attribute(sig: &[&Token], src: &str, open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut j = open;
    let mut first_ident: Option<&str> = None;
    let mut paren_stack: Vec<&str> = Vec::new();
    let mut last_ident: &str = "";
    let mut is_test = false;
    while j < sig.len() {
        let t = sig[j].text(src);
        match t {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "(" => paren_stack.push(last_ident),
            ")" => {
                paren_stack.pop();
            }
            _ => {
                if sig[j].kind == TokenKind::Ident {
                    if first_ident.is_none() {
                        first_ident = Some(t);
                    }
                    if t == "test" && first_ident == Some("cfg") && !paren_stack.contains(&"not") {
                        is_test = true;
                    }
                    last_ident = t;
                }
            }
        }
        j += 1;
    }
    (j.min(sig.len().saturating_sub(1)), is_test)
}

/// D3: decides whether the `as` at `sig[i]` narrows a counter.
fn check_cast(policy: &FilePolicy, sig: &[&Token], src: &str, i: usize) -> Option<Finding> {
    let target = sig.get(i + 1)?;
    let target_text = target.text(src);
    let narrow = D3_NARROW.contains(&target_text);
    let to_usize = target_text == "usize" || target_text == "isize";
    if !narrow && !to_usize {
        return None;
    }
    let names = operand_idents(sig, src, i, to_usize);
    let hit = names.iter().find(|n| is_counter_ident(n))?;
    Some(Finding {
        lint: Lint::D3,
        path: policy.path.clone(),
        line: sig[i].line,
        token: format!("{hit} as {target_text}"),
        hint: "cycle/energy/MAC counters are 64-bit; widen to u64/f64 or convert with \
               try_from and surface an EngineError on overflow"
            .into(),
    })
}

/// Collects the identifiers of the expression immediately before an
/// `as` at `sig[i]`, walking back through field accesses, `::` paths,
/// and one level of parenthesized groups; when the walk lands on a
/// struct-literal field (`name: <expr> as ..`), the field name is
/// included. `strict` (used for `as usize`) only walks plain
/// ident/field/empty-call chains, so quantizing arithmetic like
/// `(x * pool).floor() as usize` is not flagged.
fn operand_idents(sig: &[&Token], src: &str, i: usize, strict: bool) -> Vec<String> {
    let mut names = Vec::new();
    let mut j = match i.checked_sub(1) {
        Some(v) => v,
        None => return names,
    };
    loop {
        let t = sig[j].text(src);
        let next_j = match t {
            ")" | "]" => {
                let open = if t == ")" { "(" } else { "[" };
                // Scan back to the matching opener, collecting idents.
                let mut depth = 1usize;
                let mut k = j;
                let mut opener: Option<usize> = None;
                while k > 0 {
                    k -= 1;
                    let tk = sig[k].text(src);
                    if tk == t {
                        depth += 1;
                    } else if tk == open {
                        depth -= 1;
                        if depth == 0 {
                            opener = Some(k);
                            break;
                        }
                    } else if sig[k].kind == TokenKind::Ident {
                        if strict {
                            // Strict mode tolerates only empty call parens.
                            return names;
                        }
                        names.push(tk.to_string());
                    }
                }
                match opener {
                    Some(k) => k.checked_sub(1),
                    None => None,
                }
            }
            "." | ":" => j.checked_sub(1),
            _ if sig[j].kind == TokenKind::Ident => {
                names.push(t.to_string());
                j.checked_sub(1)
            }
            _ if sig[j].kind == TokenKind::Number => j.checked_sub(1),
            _ => None,
        };
        match next_j {
            Some(v) => j = v,
            None => return names,
        }
    }
}

fn is_counter_ident(name: &str) -> bool {
    name.split('_').any(|seg| COUNTER_SEGMENTS.contains(&seg.to_ascii_lowercase().as_str()))
}

/// D5: every `impl Engine for ..` site requires the file to reference
/// `validate_finite` (directly or via a helper defined in-file).
fn check_engine_impls(
    policy: &FilePolicy,
    sig: &[&Token],
    src: &str,
    in_test: &[bool],
) -> Vec<Finding> {
    let mut has_validate = false;
    let mut impl_sites: Vec<(u32, String)> = Vec::new();
    for (i, tok) in sig.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let text = tok.text(src);
        if text == "validate_finite" || text == "all_finite" {
            has_validate = true;
        }
        if text == "Engine" && sig.get(i + 1).map(|t| t.text(src)) == Some("for") && !in_test[i] {
            // Require an `impl` within the preceding few tokens (skips
            // generic params like `impl<E: Engine + ?Sized> Engine for`).
            let back = i.saturating_sub(12);
            let is_impl = (back..i).any(|k| sig[k].text(src) == "impl");
            if is_impl {
                let target: String = sig
                    .iter()
                    .skip(i + 2)
                    .take(4)
                    .take_while(|t| t.text(src) != "{")
                    .map(|t| t.text(src))
                    .collect::<Vec<_>>()
                    .join("");
                impl_sites.push((tok.line, target));
            }
        }
    }
    if has_validate {
        return Vec::new();
    }
    impl_sites
        .into_iter()
        .map(|(line, target)| Finding {
            lint: Lint::D5,
            path: policy.path.clone(),
            line,
            token: format!("impl Engine for {target}"),
            hint: "engine entry points must reject NaN/Inf operands: call \
                   sigma_core::validate_finite (or carry a lint.toml waiver)"
                .into(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_policy() -> FilePolicy {
        FilePolicy {
            path: "crates/demo/src/lib.rs".into(),
            role: FileRole::Lib,
            determinism_critical: true,
            unsafe_allowed: false,
        }
    }

    fn lints_of(src: &str) -> Vec<Lint> {
        check_file(&lib_policy(), src).into_iter().map(|f| f.lint).collect()
    }

    #[test]
    fn d1_flags_hashmap_but_not_in_comments_or_strings() {
        assert_eq!(lints_of("use std::collections::HashMap;"), vec![Lint::D1]);
        assert_eq!(lints_of("// HashMap\nlet s = \"HashMap\";"), vec![]);
        assert_eq!(lints_of("let m = r#\"HashMap here\"#;"), vec![]);
    }

    #[test]
    fn d1_flags_time_paths_and_instant() {
        assert_eq!(lints_of("let t = std::time::Duration::from_secs(1);"), vec![Lint::D1]);
        assert_eq!(lints_of("let t = Instant::now();"), vec![Lint::D1]);
        // `time` not behind `std::` is someone's variable.
        assert_eq!(lints_of("let time = cycles;"), vec![]);
    }

    #[test]
    fn d1_exempts_cfg_test_items() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::collections::HashSet;\n}\nfn f() {}\n";
        assert_eq!(lints_of(src), vec![]);
        // not(test) is live code.
        let src = "#[cfg(not(test))]\nfn f() { let m: HashMap<u8, u8>; }\n";
        assert_eq!(lints_of(src), vec![Lint::D1]);
    }

    #[test]
    fn d2_flags_unwrap_expect_and_macros() {
        assert_eq!(lints_of("fn f() { x.unwrap(); }"), vec![Lint::D2]);
        assert_eq!(lints_of("fn f() { x.expect(\"m\"); }"), vec![Lint::D2]);
        assert_eq!(lints_of("fn f() { panic!(\"boom\"); }"), vec![Lint::D2]);
        assert_eq!(lints_of("fn f() { todo!() }"), vec![Lint::D2]);
        // unwrap_or and friends are fine; panic paths/imports are fine.
        assert_eq!(lints_of("fn f() { x.unwrap_or(0); std::panic::catch_unwind(g); }"), vec![]);
    }

    #[test]
    fn d2_exempts_test_modules_and_bins() {
        let src = "#[cfg(test)]\nmod tests { fn g() { x.unwrap(); } }";
        assert_eq!(lints_of(src), vec![]);
        let bin = FilePolicy {
            path: "crates/demo/src/bin/tool.rs".into(),
            role: FileRole::Bin,
            determinism_critical: false,
            unsafe_allowed: false,
        };
        assert_eq!(check_file(&bin, "fn main() { x.unwrap(); }"), vec![]);
    }

    #[test]
    fn d3_flags_narrowing_counter_casts() {
        assert_eq!(lints_of("let c = total_cycles as u32;"), vec![Lint::D3]);
        assert_eq!(lints_of("let c = stats.useful_macs as u16;"), vec![Lint::D3]);
        assert_eq!(lints_of("let e = energy_pj as f32;"), vec![Lint::D3]);
        assert_eq!(
            lints_of("let f = Foo { completion_cycles: (i - start) as u32 };"),
            vec![Lint::D3]
        );
        // Widening and non-counter casts are fine.
        assert_eq!(lints_of("let c = total_cycles as u64;"), vec![]);
        assert_eq!(lints_of("let c = total_cycles() as f64;"), vec![]);
        assert_eq!(lints_of("let k = shape.k as f32;"), vec![]);
    }

    #[test]
    fn d3_usize_is_strict() {
        assert_eq!(lints_of("let c = stats.total_cycles() as usize;"), vec![Lint::D3]);
        // Quantizing arithmetic through floor() keeps its cast.
        assert_eq!(lints_of("let s = ((macs / work) * pool).floor() as usize;"), vec![]);
    }

    #[test]
    fn d4_flags_unsafe_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests { unsafe fn g() {} }";
        assert_eq!(lints_of(src), vec![Lint::D4]);
        let allowed = FilePolicy { unsafe_allowed: true, ..lib_policy() };
        assert_eq!(check_file(&allowed, "unsafe fn g() {}"), vec![]);
    }

    #[test]
    fn d5_requires_validate_finite_in_engine_files() {
        let bad = "impl Engine for Foo { fn run(&self) {} }";
        let got = check_file(&lib_policy(), bad);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].lint, Lint::D5);
        let good = "impl Engine for Foo { fn run(&self) { validate_finite(a, b)?; } }";
        assert_eq!(check_file(&lib_policy(), good), vec![]);
        let generic = "impl<E: Engine + ?Sized> Engine for Box<E> { }";
        assert_eq!(check_file(&lib_policy(), generic).len(), 1);
    }

    fn harness_policy() -> FilePolicy {
        FilePolicy {
            path: "crates/bench/src/harness/emit.rs".into(),
            role: FileRole::Lib,
            determinism_critical: false,
            unsafe_allowed: false,
        }
    }

    #[test]
    fn d6_flags_bare_writes_in_harness_code() {
        let got = check_file(&harness_policy(), "fn f() { std::fs::write(&path, data)?; }");
        assert_eq!(got.iter().map(|f| f.lint).collect::<Vec<_>>(), vec![Lint::D6]);
        assert_eq!(got[0].token, "fs::write");
        let got = check_file(&harness_policy(), "fn f() { let f = File::create(&path)?; }");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].token, "File::create");
    }

    /// The run-cache persistence module rides the same harness prefix as
    /// the journal: a bare write into `cache.rs` must trip the
    /// non-atomic-write ban without any rule change.
    #[test]
    fn d6_covers_the_run_cache_persistence_module() {
        let cache_policy =
            FilePolicy { path: "crates/bench/src/harness/cache.rs".into(), ..harness_policy() };
        let got = check_file(&cache_policy, "fn f() { std::fs::write(&store, line)?; }");
        assert_eq!(got.iter().map(|f| f.lint).collect::<Vec<_>>(), vec![Lint::D6]);
        let got = check_file(&cache_policy, "fn f() { let f = File::create(&store)?; }");
        assert_eq!(got.iter().map(|f| f.lint).collect::<Vec<_>>(), vec![Lint::D6]);
        // The sanctioned temp+rename half stays clean.
        let src = "fn f() { let mut tmp = File::create(&tmp_path)?; }";
        assert_eq!(check_file(&cache_policy, src), vec![]);
    }

    #[test]
    fn d6_exempts_temp_siblings_tests_and_other_files() {
        // The temp half of write-then-rename is the sanctioned pattern.
        let src = "fn f() { let mut tmp_file = File::create(&tmp)?; }";
        assert_eq!(check_file(&harness_policy(), src), vec![]);
        let src = "fn f() { std::fs::write(&temp_path, data)?; }";
        assert_eq!(check_file(&harness_policy(), src), vec![]);
        // `fs::create_dir_all` and method-call `.write(..)` are not
        // target-file writes.
        let src = "fn f() { std::fs::create_dir_all(&dir)?; out.write(buf)?; }";
        assert_eq!(check_file(&harness_policy(), src), vec![]);
        // Test code and non-harness library code keep their latitude.
        let src = "#[cfg(test)]\nmod tests { fn g() { let _ = std::fs::write(&path, b\"x\"); } }";
        assert_eq!(check_file(&harness_policy(), src), vec![]);
        let src = "fn f() { std::fs::write(&path, data)?; }";
        assert_eq!(check_file(&lib_policy(), src), vec![]);
    }

    #[test]
    fn findings_carry_file_line_and_token() {
        let src = "fn f() {\n    let x = y.unwrap();\n}\n";
        let got = check_file(&lib_policy(), src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 2);
        assert_eq!(got[0].token, ".unwrap()");
        assert!(got[0].to_string().contains("crates/demo/src/lib.rs:2"));
    }
}
