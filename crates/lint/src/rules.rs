//! The nine domain lints (D1–D9) over a lexed token stream.
//!
//! Every rule works on [`lex`](crate::lexer::lex) output, so comments,
//! doc comments, and string/raw-string literals can never trigger a
//! finding, and `#[cfg(test)]` items are recognized and exempted where
//! the policy allows test-only code more latitude. D1–D6 are
//! token-local; D7–D9 run as a second, workspace-wide phase on top of
//! the [`scopes`](crate::scopes) pass (see [`check_concurrency`]).
//!
//! | lint | invariant                                                        |
//! |------|------------------------------------------------------------------|
//! | D1   | no nondeterminism sources in crates that feed `RunRecord` output |
//! | D2   | no `unwrap`/`expect`/`panic!`/`todo!` in non-test library code   |
//! | D3   | no truncating casts on cycle/energy/MAC counters                 |
//! | D4   | `unsafe` only in the explicit allowlist                          |
//! | D5   | every `impl Engine` file validates operand finiteness            |
//! | D6   | harness persistence code writes files atomically (temp+rename)   |
//! | D7   | one global lock order: no inversions, no cycles, no re-entry     |
//! | D8   | no blocking calls (fsync/sleep/join/recv/..) while a guard lives |
//! | D9   | flight-recorder spans balance; counters bump inside their span   |

use crate::lexer::{lex, Token, TokenKind};
use crate::lockgraph;
use crate::scopes::{self, Acquisition, FileScopes};

/// Which rule produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Nondeterminism source (`HashMap`, `Instant`, `std::time`, ...) in
    /// a determinism-critical crate.
    D1,
    /// `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library
    /// code outside `#[cfg(test)]`.
    D2,
    /// Truncating `as` cast on a cycle/energy/MAC counter expression.
    D3,
    /// `unsafe` outside the allowlist.
    D4,
    /// An `impl Engine` without operand finiteness validation.
    D5,
    /// A non-atomic file write (`File::create`/`fs::write` straight to
    /// the target path) in harness persistence code, where a crash
    /// mid-write must never corrupt a journal or result artifact.
    D6,
    /// A lock-order hazard: two sites acquiring the same pair of locks
    /// in opposite nesting order anywhere in the workspace, a longer
    /// acquisition cycle, or re-acquiring a lock whose guard is live.
    D7,
    /// A blocking operation (`fsync`/`sync_all`/`write_all`/`sleep`/
    /// `join`/`recv`, or a `Condvar::wait` on a *different* lock) while
    /// a lock guard is live, outside the documented allowlist.
    D8,
    /// An unbalanced flight-recorder span (a `now_us` begin with no
    /// matching `span_since` on an early-return/`?` path), or a
    /// `Stage`-tagged counter bumped outside its stage's span.
    D9,
}

impl Lint {
    /// The lint's short name (`"D1"`...).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Lint::D1 => "D1",
            Lint::D2 => "D2",
            Lint::D3 => "D3",
            Lint::D4 => "D4",
            Lint::D5 => "D5",
            Lint::D6 => "D6",
            Lint::D7 => "D7",
            Lint::D8 => "D8",
            Lint::D9 => "D9",
        }
    }

    /// Parses `"D1"`..`"D9"` (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Lint> {
        match s.to_ascii_uppercase().as_str() {
            "D1" => Some(Lint::D1),
            "D2" => Some(Lint::D2),
            "D3" => Some(Lint::D3),
            "D4" => Some(Lint::D4),
            "D5" => Some(Lint::D5),
            "D6" => Some(Lint::D6),
            "D7" => Some(Lint::D7),
            "D8" => Some(Lint::D8),
            "D9" => Some(Lint::D9),
            _ => None,
        }
    }

    /// All lints, in order (drives rule metadata emission, e.g. SARIF).
    pub const ALL: [Lint; 9] =
        [Lint::D1, Lint::D2, Lint::D3, Lint::D4, Lint::D5, Lint::D6, Lint::D7, Lint::D8, Lint::D9];

    /// One-line rule description (SARIF rule metadata, `--help`).
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Lint::D1 => "no nondeterminism sources in determinism-critical crates",
            Lint::D2 => "no unwrap/expect/panic!/todo! in non-test library code",
            Lint::D3 => "no truncating casts on cycle/energy/MAC counters",
            Lint::D4 => "unsafe only in the explicit allowlist",
            Lint::D5 => "every impl Engine file validates operand finiteness",
            Lint::D6 => "harness persistence writes files atomically (temp+rename)",
            Lint::D7 => "one global lock order: no inversions, cycles, or re-entry",
            Lint::D8 => "no blocking operations while a lock guard is live",
            Lint::D9 => {
                "flight-recorder spans balance on all paths; stage counters \
                         bump only inside their stage's span"
            }
        }
    }
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: where, which rule, what token, and how to fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub lint: Lint,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// The offending token text.
    pub token: String,
    /// Human-readable fix hint.
    pub hint: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: `{}` — {}", self.path, self.line, self.lint, self.token, self.hint)
    }
}

/// What kind of target a file belongs to, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Part of a crate's library target (`src/` minus `src/bin`).
    Lib,
    /// A binary target (`src/bin/*` or `src/main.rs`).
    Bin,
    /// Integration tests, benches, or examples.
    TestOrBench,
}

/// Per-file lint policy, derived from the workspace layout by
/// [`Workspace`](crate::analyzer::Workspace).
#[derive(Debug, Clone)]
pub struct FilePolicy {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// Role of the file in its crate.
    pub role: FileRole,
    /// Whether D1 applies (determinism-critical crate, library code).
    pub determinism_critical: bool,
    /// Whether this file may contain `unsafe` (D4 allowlist).
    pub unsafe_allowed: bool,
}

/// Identifiers whose presence in determinism-critical code means the
/// output can depend on something other than the inputs.
const D1_IDENTS: &[&str] = &[
    "HashMap",
    "HashSet",
    "RandomState",
    "DefaultHasher",
    "Instant",
    "SystemTime",
    "ThreadId",
    "thread_rng",
];

/// Method names that panic on `Err`/`None`.
const D2_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that abort the simulation instead of reporting an error.
const D2_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Cast targets that can truncate a 64-bit counter.
const D3_NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Identifier segments that mark a counter expression (split on `_`).
const COUNTER_SEGMENTS: &[&str] =
    &["cycle", "cycles", "mac", "macs", "energy", "joule", "joules", "pj", "nj", "latency"];

/// Library code under this prefix owns durable artifacts (the run
/// journal, sweep exports) and must write them atomically (lint D6):
/// write a temp sibling, sync, rename over the target.
const D6_ATOMIC_WRITE_PREFIX: &str = "crates/bench/src/harness/";

/// Runs every applicable rule over one file's source.
#[must_use]
pub fn check_file(policy: &FilePolicy, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    // Significant tokens only (no whitespace/comments); rules reason over
    // these, and map back to lines through the retained spans.
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let in_test = test_regions(&sig, src);

    let mut findings = Vec::new();
    let lib_code = policy.role == FileRole::Lib;

    for (i, tok) in sig.iter().enumerate() {
        let text = tok.text(src);
        let test_code = in_test[i];

        // D4: unsafe anywhere (test or not) outside the allowlist.
        if tok.kind == TokenKind::Ident && text == "unsafe" && !policy.unsafe_allowed {
            findings.push(Finding {
                lint: Lint::D4,
                path: policy.path.clone(),
                line: tok.line,
                token: text.to_string(),
                hint: "unsafe is allowed only in lint.toml-allowlisted files; rewrite safely or \
                       extend the allowlist with a reason"
                    .into(),
            });
        }

        if test_code {
            continue;
        }

        // D1: nondeterminism sources in determinism-critical library code.
        if policy.determinism_critical && lib_code && tok.kind == TokenKind::Ident {
            if D1_IDENTS.contains(&text) {
                findings.push(Finding {
                    lint: Lint::D1,
                    path: policy.path.clone(),
                    line: tok.line,
                    token: text.to_string(),
                    hint: d1_hint(text).into(),
                });
            } else if text == "time" && path_prefix_is(&sig, src, i, "std")
                || text == "current" && path_prefix_is(&sig, src, i, "thread")
            {
                findings.push(Finding {
                    lint: Lint::D1,
                    path: policy.path.clone(),
                    line: tok.line,
                    token: qualified_tail(&sig, src, i),
                    hint: "wall-clock and thread identity must not reach cycle accounting; \
                           derive everything from the inputs and the seed"
                        .into(),
                });
            }
        }

        // D2: panicking constructs in non-test library code.
        if lib_code && tok.kind == TokenKind::Ident {
            let prev_dot = i > 0 && sig[i - 1].text(src) == ".";
            let next = sig.get(i + 1).map(|t| t.text(src));
            if D2_METHODS.contains(&text) && prev_dot && next == Some("(") {
                findings.push(Finding {
                    lint: Lint::D2,
                    path: policy.path.clone(),
                    line: tok.line,
                    token: format!(".{text}()"),
                    hint: "library code must not panic: propagate with `?`, return an \
                           EngineError/SigmaError, or use an infallible fallback"
                        .into(),
                });
            } else if D2_MACROS.contains(&text) && next == Some("!") {
                findings.push(Finding {
                    lint: Lint::D2,
                    path: policy.path.clone(),
                    line: tok.line,
                    token: format!("{text}!"),
                    hint: "library code must not panic: return an error variant instead".into(),
                });
            }
        }

        // D3: truncating casts on counter expressions.
        if lib_code && tok.kind == TokenKind::Ident && text == "as" {
            if let Some(finding) = check_cast(policy, &sig, src, i) {
                findings.push(finding);
            }
        }

        // D6: non-atomic writes in harness persistence library code.
        // Writing a temp sibling first (any argument identifier naming
        // `tmp`/`temp`) is the sanctioned half of write-then-rename.
        if lib_code
            && policy.path.starts_with(D6_ATOMIC_WRITE_PREFIX)
            && tok.kind == TokenKind::Ident
            && (text == "create" && path_prefix_is(&sig, src, i, "File")
                || text == "write" && path_prefix_is(&sig, src, i, "fs"))
            && sig.get(i + 1).map(|t| t.text(src)) == Some("(")
            && !call_args_mention_temp(&sig, src, i + 1)
        {
            findings.push(Finding {
                lint: Lint::D6,
                path: policy.path.clone(),
                line: tok.line,
                token: qualified_tail(&sig, src, i),
                hint: "a crash mid-write must never corrupt a durable artifact: write a temp \
                       sibling, sync, and rename over the target (see JournalWriter::compact), \
                       or carry a lint.toml waiver"
                    .into(),
            });
        }
    }

    // D5: files that implement Engine must validate finiteness somewhere.
    if lib_code {
        findings.extend(check_engine_impls(policy, &sig, src, &in_test));
    }

    findings
}

fn d1_hint(ident: &str) -> &'static str {
    match ident {
        "HashMap" | "HashSet" => {
            "iteration order is seeded per-process (RandomState); use BTreeMap/BTreeSet or a \
             sorted Vec so routing, caching, and exports are reproducible"
        }
        "RandomState" | "DefaultHasher" => {
            "RandomState hashes differ across processes; use a deterministic container or hasher"
        }
        "Instant" | "SystemTime" => {
            "wall-clock reads make cycle output depend on the host; count simulated cycles only"
        }
        "ThreadId" => "thread identity varies across schedulers; key data on deterministic ids",
        "thread_rng" => "thread_rng is seeded from the OS; thread a SplitMix64 seed through",
        _ => "nondeterminism source; derive everything from inputs and the seed",
    }
}

/// Whether the `::`-path before `sig[i]` starts with `prefix` (e.g.
/// `std :: time` for `path_prefix_is(.., "std")` at the `time` token).
fn path_prefix_is(sig: &[&Token], src: &str, i: usize, prefix: &str) -> bool {
    i >= 3
        && sig[i - 1].text(src) == ":"
        && sig[i - 2].text(src) == ":"
        && sig[i - 3].text(src) == prefix
}

/// D6: whether the call whose `(` sits at `sig[open]` names a temp
/// file — any argument identifier containing `tmp`/`temp` marks the
/// write as the temp half of a write-then-rename sequence.
fn call_args_mention_temp(sig: &[&Token], src: &str, open: usize) -> bool {
    let mut depth = 0usize;
    for tok in sig.iter().skip(open) {
        match tok.text(src) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            t if tok.kind == TokenKind::Ident => {
                let lower = t.to_ascii_lowercase();
                if lower.contains("tmp") || lower.contains("temp") {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// Renders `prefix::tail` for a path finding (e.g. `std::time`).
fn qualified_tail(sig: &[&Token], src: &str, i: usize) -> String {
    if i >= 3 {
        format!("{}::{}", sig[i - 3].text(src), sig[i].text(src))
    } else {
        sig[i].text(src).to_string()
    }
}

/// Marks, for each significant token, whether it sits inside a
/// `#[cfg(test)]`-gated item (attribute included).
pub(crate) fn test_regions(sig: &[&Token], src: &str) -> Vec<bool> {
    let mut flags = vec![false; sig.len()];
    let mut i = 0usize;
    while i < sig.len() {
        if sig[i].text(src) == "#" && sig.get(i + 1).map(|t| t.text(src)) == Some("[") {
            let (end, is_test) = scan_attribute(sig, src, i + 1);
            if is_test {
                // Mark the attribute, any stacked attributes, and the
                // gated item through its closing brace or semicolon.
                let mut j = end + 1;
                // Skip further attributes on the same item.
                while j < sig.len()
                    && sig[j].text(src) == "#"
                    && sig.get(j + 1).map(|t| t.text(src)) == Some("[")
                {
                    let (e, _) = scan_attribute(sig, src, j + 1);
                    j = e + 1;
                }
                // Find the item body: first `{` (block) or `;` (statement).
                let mut depth = 0usize;
                while j < sig.len() {
                    match sig[j].text(src) {
                        "{" => {
                            depth += 1;
                        }
                        "}" => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                break;
                            }
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let region_end = j.min(sig.len().saturating_sub(1));
                for f in flags.iter_mut().take(region_end + 1).skip(i) {
                    *f = true;
                }
                i = j + 1;
                continue;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
    flags
}

/// Scans the attribute starting at the `[` at `open`. Returns the index
/// of the matching `]` and whether the attribute gates on `test`
/// (`cfg(test)`, `cfg(all(test, ..))` — but not `cfg(not(test))` and not
/// `cfg_attr(..)`).
fn scan_attribute(sig: &[&Token], src: &str, open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut j = open;
    let mut first_ident: Option<&str> = None;
    let mut paren_stack: Vec<&str> = Vec::new();
    let mut last_ident: &str = "";
    let mut is_test = false;
    while j < sig.len() {
        let t = sig[j].text(src);
        match t {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "(" => paren_stack.push(last_ident),
            ")" => {
                paren_stack.pop();
            }
            _ => {
                if sig[j].kind == TokenKind::Ident {
                    if first_ident.is_none() {
                        first_ident = Some(t);
                    }
                    if t == "test" && first_ident == Some("cfg") && !paren_stack.contains(&"not") {
                        is_test = true;
                    }
                    last_ident = t;
                }
            }
        }
        j += 1;
    }
    (j.min(sig.len().saturating_sub(1)), is_test)
}

/// D3: decides whether the `as` at `sig[i]` narrows a counter.
fn check_cast(policy: &FilePolicy, sig: &[&Token], src: &str, i: usize) -> Option<Finding> {
    let target = sig.get(i + 1)?;
    let target_text = target.text(src);
    let narrow = D3_NARROW.contains(&target_text);
    let to_usize = target_text == "usize" || target_text == "isize";
    if !narrow && !to_usize {
        return None;
    }
    let names = operand_idents(sig, src, i, to_usize);
    let hit = names.iter().find(|n| is_counter_ident(n))?;
    Some(Finding {
        lint: Lint::D3,
        path: policy.path.clone(),
        line: sig[i].line,
        token: format!("{hit} as {target_text}"),
        hint: "cycle/energy/MAC counters are 64-bit; widen to u64/f64 or convert with \
               try_from and surface an EngineError on overflow"
            .into(),
    })
}

/// Collects the identifiers of the expression immediately before an
/// `as` at `sig[i]`, walking back through field accesses, `::` paths,
/// and one level of parenthesized groups; when the walk lands on a
/// struct-literal field (`name: <expr> as ..`), the field name is
/// included. `strict` (used for `as usize`) only walks plain
/// ident/field/empty-call chains, so quantizing arithmetic like
/// `(x * pool).floor() as usize` is not flagged.
fn operand_idents(sig: &[&Token], src: &str, i: usize, strict: bool) -> Vec<String> {
    let mut names = Vec::new();
    let mut j = match i.checked_sub(1) {
        Some(v) => v,
        None => return names,
    };
    loop {
        let t = sig[j].text(src);
        let next_j = match t {
            ")" | "]" => {
                let open = if t == ")" { "(" } else { "[" };
                // Scan back to the matching opener, collecting idents.
                let mut depth = 1usize;
                let mut k = j;
                let mut opener: Option<usize> = None;
                while k > 0 {
                    k -= 1;
                    let tk = sig[k].text(src);
                    if tk == t {
                        depth += 1;
                    } else if tk == open {
                        depth -= 1;
                        if depth == 0 {
                            opener = Some(k);
                            break;
                        }
                    } else if sig[k].kind == TokenKind::Ident {
                        if strict {
                            // Strict mode tolerates only empty call parens.
                            return names;
                        }
                        names.push(tk.to_string());
                    }
                }
                match opener {
                    Some(k) => k.checked_sub(1),
                    None => None,
                }
            }
            "." | ":" => j.checked_sub(1),
            _ if sig[j].kind == TokenKind::Ident => {
                names.push(t.to_string());
                j.checked_sub(1)
            }
            _ if sig[j].kind == TokenKind::Number => j.checked_sub(1),
            _ => None,
        };
        match next_j {
            Some(v) => j = v,
            None => return names,
        }
    }
}

fn is_counter_ident(name: &str) -> bool {
    name.split('_').any(|seg| COUNTER_SEGMENTS.contains(&seg.to_ascii_lowercase().as_str()))
}

/// D5: every `impl Engine for ..` site requires the file to reference
/// `validate_finite` (directly or via a helper defined in-file).
fn check_engine_impls(
    policy: &FilePolicy,
    sig: &[&Token],
    src: &str,
    in_test: &[bool],
) -> Vec<Finding> {
    let mut has_validate = false;
    let mut impl_sites: Vec<(u32, String)> = Vec::new();
    for (i, tok) in sig.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let text = tok.text(src);
        if text == "validate_finite" || text == "all_finite" {
            has_validate = true;
        }
        if text == "Engine" && sig.get(i + 1).map(|t| t.text(src)) == Some("for") && !in_test[i] {
            // Require an `impl` within the preceding few tokens (skips
            // generic params like `impl<E: Engine + ?Sized> Engine for`).
            let back = i.saturating_sub(12);
            let is_impl = (back..i).any(|k| sig[k].text(src) == "impl");
            if is_impl {
                let target: String = sig
                    .iter()
                    .skip(i + 2)
                    .take(4)
                    .take_while(|t| t.text(src) != "{")
                    .map(|t| t.text(src))
                    .collect::<Vec<_>>()
                    .join("");
                impl_sites.push((tok.line, target));
            }
        }
    }
    if has_validate {
        return Vec::new();
    }
    impl_sites
        .into_iter()
        .map(|(line, target)| Finding {
            lint: Lint::D5,
            path: policy.path.clone(),
            line,
            token: format!("impl Engine for {target}"),
            hint: "engine entry points must reject NaN/Inf operands: call \
                   sigma_core::validate_finite (or carry a lint.toml waiver)"
                .into(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Phase two: workspace-wide concurrency discipline (D7–D9).
// ---------------------------------------------------------------------

/// Method calls that block the current thread. `join` only counts with
/// an empty argument list (`handle.join()`, not `strings.join(", ")`).
const D8_PRIMITIVES: &[&str] = &[
    "sync_all",
    "sync_data",
    "fsync",
    "write_all",
    "sleep",
    "join",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
];

/// Names never treated as calls into workspace blocking functions when
/// propagating blockingness to call sites: these collide with ubiquitous
/// std collection/guard methods (`BTreeMap::insert` is not
/// `RunCache::insert`). Direct primitives are always checked; the
/// denylist only gates *name-based* propagation.
const D8_CALL_DENYLIST: &[&str] = &[
    "insert",
    "remove",
    "push",
    "pop",
    "get",
    "get_mut",
    "set",
    "clear",
    "extend",
    "drain",
    "entry",
    "contains",
    "contains_key",
    "clone",
    "iter",
    "next",
    "write",
    "read",
    "lock",
    "send",
    "flush",
    "take",
    "len",
    "is_empty",
    "new",
    "default",
    "min",
    "max",
    "map",
    "filter",
    "collect",
    "push_back",
    "pop_front",
    "append_value",
    "notify_all",
    "notify_one",
];

/// `(path, lock display, reason)` triples exempt from D8: locks whose
/// *documented job* is serializing durable I/O. Mirrors the D4 unsafe
/// allowlist — in-code so the exemption carries its justification.
pub const D8_IO_LOCK_ALLOWLIST: &[(&str, &str, &str)] = &[
    (
        "crates/bench/src/harness/cache.rs",
        "RunCache.store",
        "the store mutex is the designated I/O-serialization lock: append+compact must be \
         atomic w.r.t. each other, and the index lock is never taken while holding it",
    ),
    (
        "crates/bench/src/harness/sweep.rs",
        "resume::writer",
        "the resume journal writer mutex exists to serialize durable appends across sweep \
         workers; no other lock is ever taken under it except the warning sink",
    ),
];

/// `Stage`-tagged counters and the stage span they must bump inside.
const D9_STAGE_COUNTERS: &[(&str, &str)] = &[
    ("hits", "CacheProbe"),
    ("misses", "CacheProbe"),
    ("coalesced", "CacheProbe"),
    ("insertions", "CacheInsert"),
    ("evictions", "CacheInsert"),
];

/// Runs the cross-file concurrency rules over the whole workspace:
/// D7 on the lock graph, D8 on guard extents, D9 on flight-recorder
/// span balance in harness code.
#[must_use]
pub fn check_concurrency(files: &[(FilePolicy, String)]) -> Vec<Finding> {
    let inputs: Vec<(&str, &str)> =
        files.iter().map(|(p, s)| (p.path.as_str(), s.as_str())).collect();
    let scopes = scopes::analyze(&inputs);
    let lib: std::collections::BTreeMap<&str, bool> =
        files.iter().map(|(p, _)| (p.path.as_str(), p.role == FileRole::Lib)).collect();

    let mut findings = lockgraph::check(&scopes);
    findings.extend(check_blocking(&scopes, &lib));
    for file in &scopes.files {
        if lib.get(file.path).copied().unwrap_or(false)
            && file.path.starts_with(D6_ATOMIC_WRITE_PREFIX)
        {
            findings.extend(check_span_balance(file));
        }
    }
    findings
}

/// D8: blocking operations while a guard is live. Blockingness
/// propagates by name through workspace functions (fixpoint), filtered
/// by [`D8_CALL_DENYLIST`].
fn check_blocking(
    scopes: &scopes::WorkspaceScopes<'_>,
    lib: &std::collections::BTreeMap<&str, bool>,
) -> Vec<Finding> {
    use std::collections::BTreeSet;

    // Fixpoint: function names whose bodies (directly or transitively)
    // hit a blocking primitive.
    let mut blocking: BTreeSet<&str> = BTreeSet::new();
    loop {
        let mut changed = false;
        for file in &scopes.files {
            for f in &file.functions {
                if blocking.contains(f.name.as_str()) {
                    continue;
                }
                let blocks = (f.body.0 + 1..f.body.1).any(|m| {
                    !file.in_test[m]
                        && (primitive_site(file, m) || propagated_call_site(file, m, &blocking))
                });
                if blocks {
                    blocking.insert(f.name.as_str());
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut findings = Vec::new();
    for file in &scopes.files {
        if !lib.get(file.path).copied().unwrap_or(false) {
            continue;
        }
        for f in &file.functions {
            for m in f.body.0 + 1..f.body.1 {
                if file.in_test[m] {
                    continue;
                }
                let primitive = primitive_site(file, m);
                let propagated = propagated_call_site(file, m, &blocking);
                if !primitive && !propagated {
                    continue;
                }
                let live: Vec<&Acquisition> =
                    f.acquisitions.iter().filter(|a| a.covers(m)).collect();
                if live.is_empty() {
                    continue;
                }
                // The cache's documented lease-wait: `cond.wait(guard)`
                // hands the *only* live guard to the condvar, which is
                // exactly how in-flight dedup is supposed to park.
                if matches!(file.text(m), "wait" | "wait_timeout")
                    && live.len() == 1
                    && first_arg_ident(file, m) == live[0].guard
                {
                    continue;
                }
                let mut reported = false;
                for a in &live {
                    if D8_IO_LOCK_ALLOWLIST
                        .iter()
                        .any(|(p, l, _)| *p == file.path && *l == a.lock.display)
                    {
                        continue;
                    }
                    if reported {
                        break; // one finding per site even under nested guards
                    }
                    reported = true;
                    let what = if primitive { "blocks" } else { "transitively blocks" };
                    findings.push(Finding {
                        lint: Lint::D8,
                        path: file.path.to_string(),
                        line: file.sig[m].line,
                        token: format!(".{}()", file.text(m)),
                        hint: format!(
                            "`{}` {what} while holding `{}` (taken at line {}): move the \
                             operation outside the guard, or register the lock as a \
                             designated I/O lock in D8_IO_LOCK_ALLOWLIST",
                            f.qualified(),
                            a.lock.display,
                            a.line
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// Whether sig index `m` is a direct blocking primitive call.
fn primitive_site(file: &FileScopes<'_>, m: usize) -> bool {
    let t = file.text(m);
    if !D8_PRIMITIVES.contains(&t)
        || file.sig[m].kind != TokenKind::Ident
        || file.sig.get(m + 1).map(|x| x.text(file.src)) != Some("(")
    {
        return false;
    }
    // Method (`.wait(`) or path (`thread::sleep(`) position only.
    let called = m >= 1 && matches!(file.text(m - 1), "." | ":");
    if !called {
        return false;
    }
    // `.join(` only blocks with no arguments; `parts.join(", ")` is
    // string concatenation.
    if t == "join" {
        return file.sig.get(m + 2).map(|x| x.text(file.src)) == Some(")");
    }
    true
}

/// Whether sig index `m` calls a workspace function marked blocking
/// (by unqualified name, gated by the denylist).
fn propagated_call_site(
    file: &FileScopes<'_>,
    m: usize,
    blocking: &std::collections::BTreeSet<&str>,
) -> bool {
    let t = file.text(m);
    file.sig[m].kind == TokenKind::Ident
        && file.sig.get(m + 1).map(|x| x.text(file.src)) == Some("(")
        && !D8_CALL_DENYLIST.contains(&t)
        && !D8_PRIMITIVES.contains(&t)
        && blocking.contains(t)
}

/// First identifier of the first argument of the call at `m`.
fn first_arg_ident(file: &FileScopes<'_>, m: usize) -> Option<String> {
    let mut j = m + 2; // past the `(`
    while j < file.sig.len() {
        match file.text(j) {
            ")" | "," => return None,
            "&" | "mut" | "*" => j += 1,
            t if file.sig[j].kind == TokenKind::Ident => return Some(t.to_string()),
            _ => return None,
        }
    }
    None
}

/// One recorder-span begin: `name = <recv>.now_us()`.
struct SpanBegin {
    name: String,
    site: usize,
    line: u32,
}

/// One recorder-span end: `span_since(Stage::X, label, start)` or
/// `record_span(Stage::X, label, start, end)`.
struct SpanEnd {
    stage: Option<String>,
    start_var: Option<String>,
    site: usize,
    line: u32,
}

/// D9 over one harness file: every span begin needs a matching end with
/// no `?`/`return` escaping between them, ends need a visible begin (or
/// a caller-supplied parameter), and stage counters may only be bumped
/// inside a span of their stage.
fn check_span_balance(file: &FileScopes<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &file.functions {
        let mut begins: Vec<SpanBegin> = Vec::new();
        let mut ends: Vec<SpanEnd> = Vec::new();
        for m in f.body.0 + 1..f.body.1 {
            if file.in_test[m] || file.sig[m].kind != TokenKind::Ident {
                continue;
            }
            match file.text(m) {
                "now_us" if file.sig.get(m + 1).map(|t| t.text(file.src)) == Some("(") => {
                    if let Some(begin) = span_begin_at(file, m) {
                        begins.push(begin);
                    }
                }
                "span_since" | "record_span"
                    if file.sig.get(m + 1).map(|t| t.text(file.src)) == Some("(") =>
                {
                    ends.push(span_end_at(file, m));
                }
                _ => {}
            }
        }

        for b in &begins {
            let matched: Vec<&SpanEnd> = ends
                .iter()
                .filter(|e| e.site > b.site && e.start_var.as_deref() == Some(b.name.as_str()))
                .collect();
            let Some(first) = matched.first() else {
                findings.push(Finding {
                    lint: Lint::D9,
                    path: file.path.to_string(),
                    line: b.line,
                    token: format!("{} = ..now_us()", b.name),
                    hint: format!(
                        "`{}` begins a span at `{}` but never records it; every begin needs \
                         a span_since/record_span on all paths",
                        f.qualified(),
                        b.name
                    ),
                });
                continue;
            };
            for m in b.site + 1..first.site {
                let is_escape = (file.text(m) == "?" && file.sig[m].kind == TokenKind::Punct)
                    || (file.text(m) == "return" && file.sig[m].kind == TokenKind::Ident);
                if is_escape && !file.in_test[m] {
                    findings.push(Finding {
                        lint: Lint::D9,
                        path: file.path.to_string(),
                        line: file.sig[m].line,
                        token: file.text(m).to_string(),
                        hint: format!(
                            "`{}` can exit between the `{}` span begin (line {}) and its \
                             record (line {}), losing the span; record the span before \
                             propagating the error",
                            f.qualified(),
                            b.name,
                            b.line,
                            first.line
                        ),
                    });
                    break;
                }
            }
        }

        for e in &ends {
            let Some(var) = &e.start_var else { continue };
            let has_begin = begins.iter().any(|b| &b.name == var && b.site < e.site);
            if !has_begin && !f.params.contains(var) {
                findings.push(Finding {
                    lint: Lint::D9,
                    path: file.path.to_string(),
                    line: e.line,
                    token: format!("span start `{var}`"),
                    hint: format!(
                        "`{}` records a span from `{var}` with no visible `now_us` begin \
                         and no parameter of that name",
                        f.qualified()
                    ),
                });
            }
        }

        for m in f.body.0 + 1..f.body.1 {
            if file.in_test[m] || file.sig[m].kind != TokenKind::Ident {
                continue;
            }
            let Some((_, stage)) = D9_STAGE_COUNTERS.iter().find(|(c, _)| *c == file.text(m))
            else {
                continue;
            };
            let bump = m >= 1
                && file.text(m - 1) == "."
                && file.sig.get(m + 1).map(|t| t.text(file.src)) == Some("+")
                && file.sig.get(m + 2).map(|t| t.text(file.src)) == Some("=");
            if !bump {
                continue;
            }
            let covered = begins.iter().any(|b| {
                b.site < m
                    && ends.iter().any(|e| {
                        e.site > m
                            && e.start_var.as_deref() == Some(b.name.as_str())
                            && e.stage.as_deref() == Some(*stage)
                    })
            });
            if !covered {
                findings.push(Finding {
                    lint: Lint::D9,
                    path: file.path.to_string(),
                    line: file.sig[m].line,
                    token: format!(".{} += 1", file.text(m)),
                    hint: format!(
                        "`{}` bumps the `{}` counter outside a live `{stage}` span; the \
                         Perfetto timeline reconciles counters against their stage's \
                         spans, so bump inside the span",
                        f.qualified(),
                        file.text(m)
                    ),
                });
            }
        }
    }
    findings
}

/// Parses a begin at the `now_us` token: walks back over the receiver
/// chain to `name =` (with optional `let [mut]`).
fn span_begin_at(file: &FileScopes<'_>, m: usize) -> Option<SpanBegin> {
    let mut j = m;
    while j >= 2
        && file.text(j - 1) == "."
        && file.sig[j - 2].kind == TokenKind::Ident
        && (j < 3 || file.text(j - 3) != ":")
    {
        j -= 2;
    }
    if j < 2 || file.text(j - 1) != "=" || file.sig[j - 2].kind != TokenKind::Ident {
        return None;
    }
    let name = file.text(j - 2).to_string();
    Some(SpanBegin { name, site: m, line: file.sig[m].line })
}

/// Parses an end at the `span_since`/`record_span` token: stage from
/// the first argument's `Stage::X`, start variable from the third
/// argument's first identifier.
fn span_end_at(file: &FileScopes<'_>, m: usize) -> SpanEnd {
    let mut stage = None;
    let mut start_var = None;
    let mut depth = 0i32;
    let mut arg = 0usize;
    let mut j = m + 1;
    while j < file.sig.len() {
        let t = file.text(j);
        match t {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => arg += 1,
            _ => {
                if file.sig[j].kind == TokenKind::Ident {
                    if arg == 0
                        && t == "Stage"
                        && file.sig.get(j + 2).map(|x| x.text(file.src)) == Some(":")
                    {
                        stage = file.sig.get(j + 3).map(|x| x.text(file.src).to_string());
                    }
                    if arg == 2 && start_var.is_none() {
                        start_var = Some(t.to_string());
                    }
                }
            }
        }
        j += 1;
    }
    SpanEnd { stage, start_var, site: m, line: file.sig[m].line }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_policy() -> FilePolicy {
        FilePolicy {
            path: "crates/demo/src/lib.rs".into(),
            role: FileRole::Lib,
            determinism_critical: true,
            unsafe_allowed: false,
        }
    }

    fn lints_of(src: &str) -> Vec<Lint> {
        check_file(&lib_policy(), src).into_iter().map(|f| f.lint).collect()
    }

    #[test]
    fn d1_flags_hashmap_but_not_in_comments_or_strings() {
        assert_eq!(lints_of("use std::collections::HashMap;"), vec![Lint::D1]);
        assert_eq!(lints_of("// HashMap\nlet s = \"HashMap\";"), vec![]);
        assert_eq!(lints_of("let m = r#\"HashMap here\"#;"), vec![]);
    }

    #[test]
    fn d1_flags_time_paths_and_instant() {
        assert_eq!(lints_of("let t = std::time::Duration::from_secs(1);"), vec![Lint::D1]);
        assert_eq!(lints_of("let t = Instant::now();"), vec![Lint::D1]);
        // `time` not behind `std::` is someone's variable.
        assert_eq!(lints_of("let time = cycles;"), vec![]);
    }

    #[test]
    fn d1_exempts_cfg_test_items() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::collections::HashSet;\n}\nfn f() {}\n";
        assert_eq!(lints_of(src), vec![]);
        // not(test) is live code.
        let src = "#[cfg(not(test))]\nfn f() { let m: HashMap<u8, u8>; }\n";
        assert_eq!(lints_of(src), vec![Lint::D1]);
    }

    #[test]
    fn d2_flags_unwrap_expect_and_macros() {
        assert_eq!(lints_of("fn f() { x.unwrap(); }"), vec![Lint::D2]);
        assert_eq!(lints_of("fn f() { x.expect(\"m\"); }"), vec![Lint::D2]);
        assert_eq!(lints_of("fn f() { panic!(\"boom\"); }"), vec![Lint::D2]);
        assert_eq!(lints_of("fn f() { todo!() }"), vec![Lint::D2]);
        // unwrap_or and friends are fine; panic paths/imports are fine.
        assert_eq!(lints_of("fn f() { x.unwrap_or(0); std::panic::catch_unwind(g); }"), vec![]);
    }

    #[test]
    fn d2_exempts_test_modules_and_bins() {
        let src = "#[cfg(test)]\nmod tests { fn g() { x.unwrap(); } }";
        assert_eq!(lints_of(src), vec![]);
        let bin = FilePolicy {
            path: "crates/demo/src/bin/tool.rs".into(),
            role: FileRole::Bin,
            determinism_critical: false,
            unsafe_allowed: false,
        };
        assert_eq!(check_file(&bin, "fn main() { x.unwrap(); }"), vec![]);
    }

    #[test]
    fn d3_flags_narrowing_counter_casts() {
        assert_eq!(lints_of("let c = total_cycles as u32;"), vec![Lint::D3]);
        assert_eq!(lints_of("let c = stats.useful_macs as u16;"), vec![Lint::D3]);
        assert_eq!(lints_of("let e = energy_pj as f32;"), vec![Lint::D3]);
        assert_eq!(
            lints_of("let f = Foo { completion_cycles: (i - start) as u32 };"),
            vec![Lint::D3]
        );
        // Widening and non-counter casts are fine.
        assert_eq!(lints_of("let c = total_cycles as u64;"), vec![]);
        assert_eq!(lints_of("let c = total_cycles() as f64;"), vec![]);
        assert_eq!(lints_of("let k = shape.k as f32;"), vec![]);
    }

    #[test]
    fn d3_usize_is_strict() {
        assert_eq!(lints_of("let c = stats.total_cycles() as usize;"), vec![Lint::D3]);
        // Quantizing arithmetic through floor() keeps its cast.
        assert_eq!(lints_of("let s = ((macs / work) * pool).floor() as usize;"), vec![]);
    }

    #[test]
    fn d4_flags_unsafe_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests { unsafe fn g() {} }";
        assert_eq!(lints_of(src), vec![Lint::D4]);
        let allowed = FilePolicy { unsafe_allowed: true, ..lib_policy() };
        assert_eq!(check_file(&allowed, "unsafe fn g() {}"), vec![]);
    }

    #[test]
    fn d5_requires_validate_finite_in_engine_files() {
        let bad = "impl Engine for Foo { fn run(&self) {} }";
        let got = check_file(&lib_policy(), bad);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].lint, Lint::D5);
        let good = "impl Engine for Foo { fn run(&self) { validate_finite(a, b)?; } }";
        assert_eq!(check_file(&lib_policy(), good), vec![]);
        let generic = "impl<E: Engine + ?Sized> Engine for Box<E> { }";
        assert_eq!(check_file(&lib_policy(), generic).len(), 1);
    }

    fn harness_policy() -> FilePolicy {
        FilePolicy {
            path: "crates/bench/src/harness/emit.rs".into(),
            role: FileRole::Lib,
            determinism_critical: false,
            unsafe_allowed: false,
        }
    }

    #[test]
    fn d6_flags_bare_writes_in_harness_code() {
        let got = check_file(&harness_policy(), "fn f() { std::fs::write(&path, data)?; }");
        assert_eq!(got.iter().map(|f| f.lint).collect::<Vec<_>>(), vec![Lint::D6]);
        assert_eq!(got[0].token, "fs::write");
        let got = check_file(&harness_policy(), "fn f() { let f = File::create(&path)?; }");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].token, "File::create");
    }

    /// The run-cache persistence module rides the same harness prefix as
    /// the journal: a bare write into `cache.rs` must trip the
    /// non-atomic-write ban without any rule change.
    #[test]
    fn d6_covers_the_run_cache_persistence_module() {
        let cache_policy =
            FilePolicy { path: "crates/bench/src/harness/cache.rs".into(), ..harness_policy() };
        let got = check_file(&cache_policy, "fn f() { std::fs::write(&store, line)?; }");
        assert_eq!(got.iter().map(|f| f.lint).collect::<Vec<_>>(), vec![Lint::D6]);
        let got = check_file(&cache_policy, "fn f() { let f = File::create(&store)?; }");
        assert_eq!(got.iter().map(|f| f.lint).collect::<Vec<_>>(), vec![Lint::D6]);
        // The sanctioned temp+rename half stays clean.
        let src = "fn f() { let mut tmp = File::create(&tmp_path)?; }";
        assert_eq!(check_file(&cache_policy, src), vec![]);
    }

    #[test]
    fn d6_exempts_temp_siblings_tests_and_other_files() {
        // The temp half of write-then-rename is the sanctioned pattern.
        let src = "fn f() { let mut tmp_file = File::create(&tmp)?; }";
        assert_eq!(check_file(&harness_policy(), src), vec![]);
        let src = "fn f() { std::fs::write(&temp_path, data)?; }";
        assert_eq!(check_file(&harness_policy(), src), vec![]);
        // `fs::create_dir_all` and method-call `.write(..)` are not
        // target-file writes.
        let src = "fn f() { std::fs::create_dir_all(&dir)?; out.write(buf)?; }";
        assert_eq!(check_file(&harness_policy(), src), vec![]);
        // Test code and non-harness library code keep their latitude.
        let src = "#[cfg(test)]\nmod tests { fn g() { let _ = std::fs::write(&path, b\"x\"); } }";
        assert_eq!(check_file(&harness_policy(), src), vec![]);
        let src = "fn f() { std::fs::write(&path, data)?; }";
        assert_eq!(check_file(&lib_policy(), src), vec![]);
    }

    #[test]
    fn findings_carry_file_line_and_token() {
        let src = "fn f() {\n    let x = y.unwrap();\n}\n";
        let got = check_file(&lib_policy(), src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 2);
        assert_eq!(got[0].token, ".unwrap()");
        assert!(got[0].to_string().contains("crates/demo/src/lib.rs:2"));
    }

    // --- D7–D9: workspace concurrency phase -------------------------

    /// Runs [`check_concurrency`] over one lib-role file plus a struct
    /// definition declaring three locks.
    fn concurrency_lints(src: &str) -> Vec<(Lint, u32)> {
        concurrency_lints_at("crates/demo/src/lib.rs", src)
    }

    fn concurrency_lints_at(path: &str, src: &str) -> Vec<(Lint, u32)> {
        let locks = "pub struct S { a: Mutex<u32>, b: Mutex<u32>, cond: Condvar }";
        let files = vec![
            (FilePolicy { path: "crates/demo/src/s.rs".into(), ..lib_policy() }, locks.into()),
            (FilePolicy { path: path.into(), ..lib_policy() }, src.to_string()),
        ];
        check_concurrency(&files).into_iter().map(|f| (f.lint, f.line)).collect()
    }

    #[test]
    fn d8_flags_direct_blocking_primitives_under_a_guard() {
        let src = "impl S { fn f(&self) { let g = self.a.lock(); file.sync_all()?; } }";
        assert_eq!(concurrency_lints(src), vec![(Lint::D8, 1)]);
        let src = "impl S { fn f(&self) { let g = self.a.lock(); drop(g); file.sync_all()?; } }";
        assert_eq!(concurrency_lints(src), vec![]);
    }

    #[test]
    fn d8_join_only_blocks_with_no_arguments() {
        let src = "impl S { fn f(&self) { let g = self.a.lock(); handle.join(); } }";
        assert_eq!(concurrency_lints(src), vec![(Lint::D8, 1)]);
        let src = "impl S { fn f(&self) { let g = self.a.lock(); let s = parts.join(\", \"); } }";
        assert_eq!(concurrency_lints(src), vec![]);
    }

    #[test]
    fn d8_propagates_through_workspace_helpers_but_not_std_names() {
        let src = "
impl S {
    fn flush_to_disk(&self) { self.file.sync_all(); }
    fn f(&self) {
        let g = self.a.lock();
        self.flush_to_disk();
    }
    fn g(&self) {
        let g = self.a.lock();
        map.insert(k, v); // std-collection name: never propagated
    }
}";
        assert_eq!(concurrency_lints(src), vec![(Lint::D8, 6)]);
    }

    #[test]
    fn d8_exempts_condvar_wait_on_the_sole_held_guard() {
        // The cache's lease-wait: the guard handed to wait() is the one
        // live guard, so the lock is *released* while parked.
        let src = "impl S { fn f(&self) {
            let mut g = self.a.lock();
            g = self.cond.wait(g);
        } }";
        assert_eq!(concurrency_lints(src), vec![]);
        // Waiting while a *second* guard is live still blocks that one.
        let src = "impl S { fn f(&self) {
            let h = self.b.lock();
            let mut g = self.a.lock();
            g = self.cond.wait(g);
        } }";
        assert_eq!(concurrency_lints(src), vec![(Lint::D8, 4)]);
    }

    #[test]
    fn d8_allowlist_suppresses_designated_io_locks() {
        let (path, lock, _) = D8_IO_LOCK_ALLOWLIST[0];
        assert_eq!(lock, "RunCache.store");
        let src = "
pub struct RunCache { store: Mutex<u32> }
impl RunCache { fn f(&self) { let g = self.store.lock(); file.sync_all()?; } }";
        assert_eq!(concurrency_lints_at(path, src), vec![]);
        // The same code anywhere else is a finding.
        assert_eq!(concurrency_lints_at("crates/demo/src/lib.rs", src), vec![(Lint::D8, 3)]);
    }

    #[test]
    fn d8_only_fires_in_lib_role_files() {
        let src = "impl S { fn f(&self) { let g = self.a.lock(); file.sync_all()?; } }";
        let files = vec![(
            FilePolicy {
                path: "crates/demo/src/main.rs".into(),
                role: FileRole::Bin,
                ..lib_policy()
            },
            src.to_string(),
        )];
        assert_eq!(check_concurrency(&files), vec![]);
    }

    fn span_lints(src: &str) -> Vec<(Lint, u32)> {
        let files = vec![(
            FilePolicy { path: "crates/bench/src/harness/demo.rs".into(), ..harness_policy() },
            src.to_string(),
        )];
        check_concurrency(&files).into_iter().map(|f| (f.lint, f.line)).collect()
    }

    #[test]
    fn d9_balanced_spans_are_clean() {
        let src = "fn f(&self) {
            let t0 = self.recorder.now_us();
            work();
            self.recorder.span_since(Stage::CacheProbe, label, t0);
        }";
        assert_eq!(span_lints(src), vec![]);
    }

    #[test]
    fn d9_flags_begin_without_end_and_escape_before_end() {
        let src = "fn f(&self) {\n    let t0 = rec.now_us();\n    work();\n}";
        assert_eq!(span_lints(src), vec![(Lint::D9, 2)]);
        let src = "fn f(&self) -> Result<(), E> {
            let t0 = rec.now_us();
            fallible()?;
            rec.span_since(Stage::CacheProbe, label, t0);
            Ok(())
        }";
        assert_eq!(span_lints(src), vec![(Lint::D9, 3)]);
        // Recording the span before propagating the error is the fix.
        let src = "fn f(&self) -> Result<(), E> {
            let t0 = rec.now_us();
            let r = fallible();
            rec.span_since(Stage::CacheProbe, label, t0);
            r?;
            Ok(())
        }";
        assert_eq!(span_lints(src), vec![]);
    }

    #[test]
    fn d9_flags_orphan_ends_unless_the_start_is_a_parameter() {
        let src = "fn f(&self) { rec.span_since(Stage::CacheProbe, label, t0); }";
        assert_eq!(span_lints(src), vec![(Lint::D9, 1)]);
        // A caller-supplied start is the span-helper pattern.
        let src = "fn f(&self, t0: u64) { rec.span_since(Stage::CacheProbe, label, t0); }";
        assert_eq!(span_lints(src), vec![]);
    }

    #[test]
    fn d9_stage_counters_must_bump_inside_their_stage_span() {
        let src = "fn f(&self) {
            let t0 = rec.now_us();
            self.stats.hits += 1;
            rec.span_since(Stage::CacheProbe, label, t0);
        }";
        assert_eq!(span_lints(src), vec![]);
        // Outside any span at all.
        let src = "fn f(&self) { self.stats.hits += 1; }";
        assert_eq!(span_lints(src), vec![(Lint::D9, 1)]);
        // Inside a span of the *wrong* stage.
        let src = "fn f(&self) {
            let t0 = rec.now_us();
            self.stats.hits += 1;
            rec.span_since(Stage::CacheInsert, label, t0);
        }";
        assert_eq!(span_lints(src), vec![(Lint::D9, 3)]);
    }

    #[test]
    fn d9_is_scoped_to_harness_lib_code() {
        let src = "fn f(&self) { let t0 = rec.now_us(); }";
        // Same source outside the harness prefix: no D9.
        let files = vec![(
            FilePolicy { path: "crates/core/src/lib.rs".into(), ..lib_policy() },
            src.to_string(),
        )];
        assert_eq!(check_concurrency(&files), vec![]);
        // And inside harness test regions: exempt.
        let src = "#[cfg(test)]\nmod tests { fn f() { let t0 = rec.now_us(); } }";
        assert_eq!(span_lints(src), vec![]);
    }
}
