//! `sigma-lint` — workspace determinism & numeric-safety analyzer.
//!
//! Reproducing SIGMA's headline numbers (Fig. 12 speedups, Table-II
//! phase breakdowns, energy/area) requires the simulator to be
//! bit-deterministic and overflow-free. The runtime harness already
//! enforces byte-identical sweep output; this crate enforces the same
//! invariants *statically*, before code runs, with nine domain lints
//! (see [`rules`]) over a hand-rolled comment/string-aware lexer (see
//! [`lexer`]). D1–D6 are token-local per file; D7–D9 run a second,
//! workspace-wide phase over a brace-tree scope pass (see [`scopes`])
//! and a cross-file lock-acquisition graph (see [`lockgraph`]).
//! Waivers live in the repo-root `lint.toml` (see [`waivers`]); any
//! unwaived finding fails CI. Findings render as text, `--json`, or
//! SARIF 2.1.0 for inline CI annotations (see [`sarif`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    warn(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

pub mod lexer;
pub mod lockgraph;
pub mod rules;
pub mod sarif;
pub mod scopes;
pub mod waivers;

use std::fs;
use std::path::{Path, PathBuf};

pub use rules::{check_concurrency, check_file, FilePolicy, FileRole, Finding, Lint};
pub use sarif::report_to_sarif;
pub use waivers::{parse_waivers, Waiver, WaiverError};

/// Maximum number of waivers `lint.toml` may carry (`--check-waivers`
/// fails the build past this): exemptions are debt, and five is the
/// documented ceiling before a rule gets fixed or redesigned.
pub const WAIVER_BUDGET: usize = 5;

/// Crates whose library code feeds `RunRecord`/`CycleStats` output and
/// therefore must be free of nondeterminism sources (lint D1).
pub const DETERMINISM_CRITICAL_CRATES: &[&str] =
    &["core", "interconnect", "matrix", "baselines", "energy", "workloads", "telemetry"];

/// Files allowed to contain `unsafe` (lint D4). Today: the counting
/// global allocator used by the zero-allocation hot-loop test.
pub const UNSAFE_ALLOWLIST: &[&str] = &["crates/core/tests/alloc_free.rs"];

/// Directory names never scanned (vendored shims, build output, lint
/// test fixtures).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "results"];

/// An I/O or configuration failure (distinct from lint findings).
#[derive(Debug)]
pub struct AnalyzerError(pub String);

impl std::fmt::Display for AnalyzerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for AnalyzerError {}

impl From<WaiverError> for AnalyzerError {
    fn from(e: WaiverError) -> Self {
        AnalyzerError(e.to_string())
    }
}

/// Outcome of a full workspace scan, after waivers are applied.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by any waiver — these fail the build.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a `lint.toml` waiver.
    pub waived: Vec<Finding>,
    /// Parsed waivers, in file order.
    pub waivers: Vec<Waiver>,
    /// Waivers that covered zero findings (stale; `--check-waivers`
    /// turns these into an error so dead exemptions get pruned).
    pub stale_waivers: Vec<Waiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the scan should fail the build. With `check_waivers`,
    /// stale waivers and a waiver list over [`WAIVER_BUDGET`] also fail.
    #[must_use]
    pub fn clean(&self, check_waivers: bool) -> bool {
        self.findings.is_empty()
            && (!check_waivers
                || (self.stale_waivers.is_empty() && self.waivers.len() <= WAIVER_BUDGET))
    }
}

/// Scans the workspace rooted at `root`, applying waivers from
/// `root/lint.toml` when present.
pub fn run(root: &Path) -> Result<Report, AnalyzerError> {
    let waivers = match fs::read_to_string(root.join("lint.toml")) {
        Ok(src) => parse_waivers(&src)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(AnalyzerError(format!("lint.toml: {e}"))),
    };
    run_with_waivers(root, waivers)
}

/// Scans the workspace with an explicit waiver list (used by tests).
pub fn run_with_waivers(root: &Path, waivers: Vec<Waiver>) -> Result<Report, AnalyzerError> {
    let files = workspace_files(root)?;
    let mut report = Report { waivers: waivers.clone(), ..Report::default() };
    report.files_scanned = files.len();

    let mut used = vec![false; waivers.len()];
    let mut sources = Vec::with_capacity(files.len());
    for (policy, abs) in files {
        let src = fs::read_to_string(&abs)
            .map_err(|e| AnalyzerError(format!("{}: {e}", abs.display())))?;
        sources.push((policy, src));
    }
    let mut all = Vec::new();
    for (policy, src) in &sources {
        all.extend(check_file(policy, src));
    }
    all.extend(check_concurrency(&sources));
    all.sort_by(|a, b| {
        (&a.path, a.line, a.lint, &a.token).cmp(&(&b.path, b.line, b.lint, &b.token))
    });

    for finding in all {
        match waivers.iter().position(|w| w.covers(&finding)) {
            Some(i) => {
                used[i] = true;
                report.waived.push(finding);
            }
            None => report.findings.push(finding),
        }
    }
    report.stale_waivers =
        waivers.iter().zip(&used).filter(|(_, &u)| !u).map(|(w, _)| w.clone()).collect();
    Ok(report)
}

/// Enumerates every `.rs` file under the workspace with its lint
/// policy. Deterministic order (sorted directory walks).
pub fn workspace_files(root: &Path) -> Result<Vec<(FilePolicy, PathBuf)>, AnalyzerError> {
    let mut out = Vec::new();
    // Root facade crate (src/) plus every member under crates/.
    collect_crate(root, root, "sigma", &mut out)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for dir in sorted_dirs(&crates_dir)? {
            let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
            collect_crate(root, &dir, &name, &mut out)?;
        }
    }
    Ok(out)
}

/// Collects the `.rs` files of one crate rooted at `crate_dir`.
fn collect_crate(
    repo_root: &Path,
    crate_dir: &Path,
    crate_name: &str,
    out: &mut Vec<(FilePolicy, PathBuf)>,
) -> Result<(), AnalyzerError> {
    let determinism_critical = DETERMINISM_CRITICAL_CRATES.contains(&crate_name);
    for (sub, base_role) in [
        ("src", FileRole::Lib),
        ("tests", FileRole::TestOrBench),
        ("benches", FileRole::TestOrBench),
        ("examples", FileRole::TestOrBench),
    ] {
        let dir = crate_dir.join(sub);
        if !dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk(&dir, &mut files)?;
        for abs in files {
            let rel = relative_path(repo_root, &abs);
            let role = if base_role == FileRole::Lib
                && (rel.contains("/src/bin/") || rel.ends_with("/src/main.rs"))
            {
                FileRole::Bin
            } else {
                base_role
            };
            let policy = FilePolicy {
                unsafe_allowed: UNSAFE_ALLOWLIST.contains(&rel.as_str()),
                determinism_critical: determinism_critical && role == FileRole::Lib,
                path: rel,
                role,
            };
            out.push((policy, abs));
        }
    }
    Ok(())
}

/// Recursively collects `.rs` files in sorted order, skipping
/// [`SKIP_DIRS`].
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AnalyzerError> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| AnalyzerError(format!("{}: {e}", dir.display())))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, AnalyzerError> {
    let mut dirs: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| AnalyzerError(format!("{}: {e}", dir.display())))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    Ok(dirs)
}

/// Repo-relative path with forward slashes (stable across platforms,
/// usable as a waiver key).
fn relative_path(root: &Path, abs: &Path) -> String {
    let rel = abs.strip_prefix(root).unwrap_or(abs);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Renders the report as a JSON object (no external deps; keys sorted
/// and stable for CI artifact diffing).
#[must_use]
pub fn report_to_json(report: &Report) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str("  \"findings\": [\n");
    push_findings(&mut s, &report.findings);
    s.push_str("  ],\n  \"waived\": [\n");
    push_findings(&mut s, &report.waived);
    s.push_str("  ],\n  \"stale_waivers\": [\n");
    for (i, w) in report.stale_waivers.iter().enumerate() {
        let comma = if i + 1 < report.stale_waivers.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"path\": {}, \"lint\": {}, \"reason\": {}}}{comma}\n",
            json_str(&w.path),
            json_str(w.lint.name()),
            json_str(&w.reason)
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn push_findings(s: &mut String, findings: &[Finding]) {
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"lint\": {}, \"path\": {}, \"line\": {}, \"token\": {}, \"hint\": {}}}{comma}\n",
            json_str(f.lint.name()),
            json_str(&f.path),
            f.line,
            json_str(&f.token),
            json_str(&f.hint)
        ));
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/repo");
        let abs = Path::new("/repo/crates/core/src/lib.rs");
        assert_eq!(relative_path(root, abs), "crates/core/src/lib.rs");
    }

    #[test]
    fn json_escapes_special_chars() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_clean_logic() {
        let mut r = Report::default();
        assert!(r.clean(true));
        r.stale_waivers.push(Waiver { path: "x.rs".into(), lint: Lint::D1, reason: "r".into() });
        assert!(r.clean(false));
        assert!(!r.clean(true));
    }

    #[test]
    fn waiver_budget_is_enforced_only_under_check_waivers() {
        let mut r = Report::default();
        for i in 0..WAIVER_BUDGET + 1 {
            r.waivers.push(Waiver { path: format!("f{i}.rs"), lint: Lint::D2, reason: "r".into() });
        }
        assert!(r.clean(false), "budget only applies with --check-waivers");
        assert!(!r.clean(true), "a sixth waiver must fail --check-waivers");
        r.waivers.pop();
        assert!(r.clean(true), "exactly five waivers is within budget");
    }
}
