//! `sigma-lint` CLI.
//!
//! ```text
//! cargo run -p sigma-lint                 # human-readable report, exit 1 on findings
//! cargo run -p sigma-lint -- --json      # machine-readable report on stdout
//! cargo run -p sigma-lint -- --sarif    # SARIF 2.1.0 log (GitHub PR annotations)
//! cargo run -p sigma-lint -- --check-waivers   # also fail on stale/over-budget waivers
//! cargo run -p sigma-lint -- --root PATH # scan a different workspace root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut sarif = false;
    let mut check_waivers = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--check-waivers" => check_waivers = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("sigma-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "sigma-lint: workspace determinism, numeric-safety & concurrency analyzer\n\
                     \n\
                     USAGE: sigma-lint [--json] [--sarif] [--check-waivers] [--root PATH]\n\
                     \n\
                     Lints:"
                );
                for lint in sigma_lint::Lint::ALL {
                    println!("  {}  {}", lint.name(), lint.description());
                }
                println!(
                    "\n\
                     D1-D6 are per-file token rules; D7-D9 run a workspace-wide\n\
                     scope/lock-graph phase.\n\
                     Waivers: lint.toml at the workspace root ([[waiver]] with\n\
                     path/lint/reason; empty reasons are rejected; --check-waivers\n\
                     enforces a budget of {} waivers).\n\
                     Exit codes: 0 clean, 1 unwaived findings (or stale/over-budget\n\
                     waivers with --check-waivers), 2 usage or I/O error.",
                    sigma_lint::WAIVER_BUDGET
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sigma-lint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(find_workspace_root);
    let report = match sigma_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sigma-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if sarif {
        print!("{}", sigma_lint::report_to_sarif(&report));
    } else if json {
        print!("{}", sigma_lint::report_to_json(&report));
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        for w in &report.stale_waivers {
            let fate = if check_waivers { "error" } else { "warning" };
            println!(
                "lint.toml: {fate}: stale waiver ({} {}) matched no findings — remove it",
                w.path,
                w.lint.name()
            );
        }
        if check_waivers && report.waivers.len() > sigma_lint::WAIVER_BUDGET {
            println!(
                "lint.toml: error: {} waivers exceed the budget of {} — fix findings \
                 instead of stacking exemptions",
                report.waivers.len(),
                sigma_lint::WAIVER_BUDGET
            );
        }
        println!(
            "sigma-lint: {} file(s) scanned, {} finding(s), {} waived, {} stale waiver(s)",
            report.files_scanned,
            report.findings.len(),
            report.waived.len(),
            report.stale_waivers.len()
        );
    }

    if report.clean(check_waivers) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the first dir containing a
/// workspace `Cargo.toml` with a `crates/` directory; falls back to `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
