//! Property-based tests for workload generation.

use proptest::prelude::*;
use sigma_core::model::GemmProblem;
use sigma_matrix::GemmShape;
use sigma_workloads::im2col::ConvLayer;
use sigma_workloads::{materialize, pruning_schedule, SparsityProfile};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pruning schedules are monotone, hit their endpoints exactly, and
    /// front-load the pruning (cubic law).
    #[test]
    fn pruning_schedule_invariants(
        s0 in 0.0f64..0.5, sf_delta in 0.1f64..0.5, steps in 2usize..50
    ) {
        let sf = (s0 + sf_delta).min(1.0);
        let sched = pruning_schedule(s0, sf, steps);
        prop_assert_eq!(sched.len(), steps + 1);
        prop_assert!((sched[0] - s0).abs() < 1e-12);
        prop_assert!((sched[steps] - sf).abs() < 1e-12);
        prop_assert!(sched.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        // Front-loading: the first half covers more ground than the second.
        let mid = sched[steps / 2];
        prop_assert!(mid - s0 >= sf - mid - 1e-9);
    }

    /// Materialized operands match the requested shapes and densities.
    #[test]
    fn materialize_matches_request(
        m in 4usize..24, n in 4usize..24, k in 4usize..24,
        da10 in 1u8..=10, db10 in 1u8..=10, seed in any::<u64>()
    ) {
        let p = GemmProblem::sparse(
            GemmShape::new(m, n, k),
            f64::from(da10) / 10.0,
            f64::from(db10) / 10.0,
        );
        let (a, b) = materialize(&p, seed);
        prop_assert_eq!((a.rows(), a.cols()), (m, k));
        prop_assert_eq!((b.rows(), b.cols()), (k, n));
        let want_a = (p.density_a * (m * k) as f64).round() as usize;
        let want_b = (p.density_b * (k * n) as f64).round() as usize;
        prop_assert_eq!(a.nnz(), want_a);
        prop_assert_eq!(b.nnz(), want_b);
    }

    /// Sparsity profiles and problems round-trip densities.
    #[test]
    fn profile_roundtrip(si in 0.0f64..0.99, sw in 0.0f64..0.99) {
        let p = SparsityProfile::new(si, sw).problem(GemmShape::new(8, 8, 8));
        prop_assert!((p.density_a - (1.0 - si)).abs() < 1e-12);
        prop_assert!((p.density_b - (1.0 - sw)).abs() < 1e-12);
    }

    /// Im2Col preserves the convolution's MAC count and scales linearly
    /// with batch.
    #[test]
    fn im2col_work_preservation(
        c_in in 1usize..64, c_out in 1usize..64, kernel in 1usize..5,
        input in 8usize..32, batch in 1usize..8
    ) {
        let layer = ConvLayer {
            name: "prop",
            c_in,
            c_out,
            kernel,
            stride: 1,
            input,
            padding: kernel / 2,
        };
        let g1 = layer.im2col_gemm(1);
        let gb = layer.im2col_gemm(batch);
        prop_assert_eq!(g1.k, c_in * kernel * kernel);
        prop_assert_eq!(g1.n, c_out);
        prop_assert_eq!(gb.macs(), g1.macs() * batch as u128);
        // Output pixels: with stride 1 and pad k/2, even kernels shrink
        // the map by one; odd kernels preserve it.
        let expect_out = (input + 2 * (kernel / 2)) - kernel + 1;
        prop_assert_eq!(g1.m, expect_out * expect_out);
    }
}
