//! Named GEMM suites from the paper's workload characterization.
//!
//! Shapes come from three places:
//!
//! * the example dimensions of Fig. 1b (Transformer / GNMT / NCF /
//!   DeepBench);
//! * the GEMMs the evaluation text calls out explicitly (2048-4096-32,
//!   1024-16-500000, 2048-1-128, and Fig. 7's 1632-x-36548 matrix);
//! * Baidu DeepBench's published training GEMM list (a representative
//!   subset).
//!
//! Dimensions are (M, N, K) with `C[M,N] = A[M,K] x B[K,N]`, matching
//! Fig. 1a.

use sigma_matrix::GemmShape;

/// Source workload of a GEMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Transformer (324M-parameter big model, LM1B).
    Transformer,
    /// Google NMT, 8-layer, WMT De-En.
    Gnmt,
    /// Neural collaborative filtering.
    Ncf,
    /// Baidu DeepBench training kernels.
    DeepBench,
    /// Shapes called out in the paper's evaluation section itself.
    Evaluation,
}

impl Workload {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Transformer => "Transformer",
            Workload::Gnmt => "GNMT",
            Workload::Ncf => "NCF",
            Workload::DeepBench => "DeepBench",
            Workload::Evaluation => "Evaluation",
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A GEMM kernel with its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NamedGemm {
    /// Source workload.
    pub workload: Workload,
    /// Layer / kernel description.
    pub layer: &'static str,
    /// The GEMM dimensions.
    pub shape: GemmShape,
}

impl std::fmt::Display for NamedGemm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{} {}", self.workload, self.layer, self.shape)
    }
}

/// The Fig. 1b-style example suite: GEMMs from the four characterized
/// workloads, spanning tall-skinny to fat-short.
#[must_use]
pub fn fig1b_suite() -> Vec<NamedGemm> {
    let g =
        |workload, layer, m, n, k| NamedGemm { workload, layer, shape: GemmShape::new(m, n, k) };
    vec![
        // Transformer big: d_model 1024, d_ff 4096, vocab 32k, seq 512.
        g(Workload::Transformer, "QKV proj (fwd)", 512, 3072, 1024),
        g(Workload::Transformer, "attn out proj", 512, 1024, 1024),
        g(Workload::Transformer, "FFN-1", 512, 4096, 1024),
        g(Workload::Transformer, "FFN-2", 512, 1024, 4096),
        g(Workload::Transformer, "logits (tied embed)", 512, 32_768, 1024),
        // GNMT 8-layer: hidden 1024, vocab 32k, low decode batch.
        g(Workload::Gnmt, "encoder LSTM gates", 128, 4096, 2048),
        g(Workload::Gnmt, "decoder LSTM gates", 320, 3072, 4096),
        g(Workload::Gnmt, "attention score", 128, 2048, 4096),
        g(Workload::Gnmt, "softmax proj", 1632, 36_548, 1024),
        // NCF: embedding-MLP tower, tiny contraction dims.
        g(Workload::Ncf, "MLP-1", 256, 256, 128),
        g(Workload::Ncf, "MLP-2", 256, 128, 256),
        g(Workload::Ncf, "GMF output", 2048, 1, 128),
        // DeepBench assorted training kernels.
        g(Workload::DeepBench, "speech fwd", 5124, 9124, 2560),
        g(Workload::DeepBench, "speech low-batch", 35, 8457, 2560),
        g(Workload::DeepBench, "rnn update", 7680, 16, 2560),
        g(Workload::DeepBench, "conv-as-gemm", 3072, 128, 1024),
        g(Workload::DeepBench, "lstm 1760 b16", 1760, 16, 1760),
        g(Workload::DeepBench, "lstm 1760 b128", 1760, 128, 1760),
        g(Workload::DeepBench, "lstm 2048 b32", 2048, 32, 2048),
        g(Workload::DeepBench, "lstm 4096 b16", 4096, 16, 4096),
        g(Workload::DeepBench, "speech vocab", 512, 16, 500_000),
    ]
}

/// The GEMMs the evaluation section discusses explicitly (Fig. 11/12).
#[must_use]
pub fn evaluation_suite() -> Vec<NamedGemm> {
    let g = |layer, m, n, k| NamedGemm {
        workload: Workload::Evaluation,
        layer,
        shape: GemmShape::new(m, n, k),
    };
    vec![
        g("dense regular", 2048, 2048, 2048),
        g("low-K irregular", 2048, 4096, 32),
        g("huge-N irregular", 1024, 16, 500_000),
        g("tiny-N (GMF)", 2048, 1, 128),
        g("tall softmax proj", 1632, 36_548, 1024),
        g("decoder gates", 320, 3072, 4096),
        g("attention score", 128, 2048, 4096),
    ]
}

/// A representative subset of DeepBench's training GEMM list.
#[must_use]
pub fn deepbench_suite() -> Vec<NamedGemm> {
    fig1b_suite().into_iter().filter(|g| g.workload == Workload::DeepBench).collect()
}

/// The Fig. 1b suite rescaled to a different minibatch: the batch-bound
/// dimension (M for the sequence/batch-major kernels) scales with
/// `batch / base_batch`, keeping weights untouched. Sec. II: "Training is
/// performed in different batch sizes, which lead to different input
/// matrix dimensions."
///
/// # Panics
///
/// Panics if `batch == 0`.
#[must_use]
pub fn fig1b_suite_with_batch(batch: usize) -> Vec<NamedGemm> {
    assert!(batch > 0, "batch must be non-zero");
    // The tabulated shapes correspond to an effective base batch of 1
    // unit of the M dimension.
    fig1b_suite()
        .into_iter()
        .map(|mut g| {
            g.shape = GemmShape::new(g.shape.m.saturating_mul(batch).max(1), g.shape.n, g.shape.k);
            g
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_non_empty_and_distinct() {
        let all = fig1b_suite();
        assert!(all.len() >= 12);
        let uniq: std::collections::HashSet<_> = all.iter().map(|g| g.shape).collect();
        assert_eq!(uniq.len(), all.len(), "duplicate shapes in suite");
    }

    #[test]
    fn suite_spans_irregularity() {
        let shapes = fig1b_suite();
        assert!(shapes.iter().any(|g| g.shape.irregularity() > 100.0), "has tall-skinny");
        assert!(shapes.iter().any(|g| g.shape.irregularity() < 8.0), "has near-regular");
    }

    #[test]
    fn evaluation_suite_contains_paper_callouts() {
        let s = evaluation_suite();
        assert!(s.iter().any(|g| g.shape == GemmShape::new(2048, 4096, 32)));
        assert!(s.iter().any(|g| g.shape == GemmShape::new(1024, 16, 500_000)));
        assert!(s.iter().any(|g| g.shape == GemmShape::new(2048, 1, 128)));
    }

    #[test]
    fn deepbench_subset_filtered() {
        assert!(deepbench_suite().iter().all(|g| g.workload == Workload::DeepBench));
        assert!(!deepbench_suite().is_empty());
    }

    #[test]
    fn batch_scaling_stretches_m_only() {
        let base = fig1b_suite();
        let scaled = fig1b_suite_with_batch(4);
        for (b, s) in base.iter().zip(&scaled) {
            assert_eq!(s.shape.m, b.shape.m * 4);
            assert_eq!(s.shape.n, b.shape.n);
            assert_eq!(s.shape.k, b.shape.k);
        }
        assert_eq!(fig1b_suite_with_batch(1)[0].shape, base[0].shape);
    }

    #[test]
    fn display_forms() {
        let g = &fig1b_suite()[0];
        let txt = g.to_string();
        assert!(txt.contains("Transformer"));
        assert!(txt.contains('/'));
    }
}
