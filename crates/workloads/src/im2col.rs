//! Im2Col: lowering convolutions to GEMMs (Sec. I — "For Convolutional
//! Neural Networks, GPUs remap the conv operation into a GEMM via the
//! Im2Col operation").
//!
//! A convolution with `C_in` input channels, `C_out` filters of size
//! `KH x KW`, over an `H x W` input at stride `S` (with padding `P`),
//! becomes the GEMM
//!
//! ```text
//! M = H_out * W_out * batch     (output pixels)
//! K = C_in * KH * KW            (unrolled receptive field)
//! N = C_out                     (filters)
//! ```
//!
//! The module also carries a ResNet-50 layer table, the paper's example
//! of a workload that stays accurate at ~70% weight sparsity.

use sigma_matrix::GemmShape;

/// A 2-D convolution layer description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvLayer {
    /// Layer name.
    pub name: &'static str,
    /// Input channels.
    pub c_in: usize,
    /// Output channels (filters).
    pub c_out: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Input spatial height (= width; square inputs assumed).
    pub input: usize,
    /// Symmetric zero padding.
    pub padding: usize,
}

impl ConvLayer {
    /// Output spatial size after this convolution.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (kernel larger than the
    /// padded input, or zero stride).
    #[must_use]
    pub fn output_size(&self) -> usize {
        assert!(self.stride > 0, "stride must be non-zero");
        let padded = self.input + 2 * self.padding;
        assert!(padded >= self.kernel, "kernel exceeds padded input");
        (padded - self.kernel) / self.stride + 1
    }

    /// The Im2Col GEMM for this layer at the given batch size.
    #[must_use]
    pub fn im2col_gemm(&self, batch: usize) -> GemmShape {
        let out = self.output_size();
        GemmShape::new(out * out * batch.max(1), self.c_out, self.c_in * self.kernel * self.kernel)
    }

    /// Multiply-accumulates of the convolution itself (must equal the
    /// GEMM's — Im2Col preserves work).
    #[must_use]
    pub fn macs(&self, batch: usize) -> u128 {
        self.im2col_gemm(batch).macs()
    }
}

/// A representative slice of ResNet-50's convolution layers (one per
/// stage flavor: the 7x7 stem, and each stage's 1x1-reduce / 3x3 /
/// 1x1-expand bottleneck pattern).
#[must_use]
pub fn resnet50_layers() -> Vec<ConvLayer> {
    let l = |name, c_in, c_out, kernel, stride, input, padding| ConvLayer {
        name,
        c_in,
        c_out,
        kernel,
        stride,
        input,
        padding,
    };
    vec![
        l("conv1 (stem 7x7)", 3, 64, 7, 2, 224, 3),
        l("conv2_x 1x1 reduce", 256, 64, 1, 1, 56, 0),
        l("conv2_x 3x3", 64, 64, 3, 1, 56, 1),
        l("conv2_x 1x1 expand", 64, 256, 1, 1, 56, 0),
        l("conv3_x 3x3", 128, 128, 3, 1, 28, 1),
        l("conv4_x 3x3", 256, 256, 3, 1, 14, 1),
        l("conv5_x 3x3", 512, 512, 3, 1, 7, 1),
        l("conv5_x 1x1 expand", 512, 2048, 1, 1, 7, 0),
    ]
}

/// The Im2Col GEMM suite for ResNet-50 at a batch size.
#[must_use]
pub fn resnet50_gemms(batch: usize) -> Vec<(&'static str, GemmShape)> {
    resnet50_layers().into_iter().map(|c| (c.name, c.im2col_gemm(batch))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_sizes_match_resnet_geometry() {
        let layers = resnet50_layers();
        assert_eq!(layers[0].output_size(), 112); // stem halves 224
        assert_eq!(layers[2].output_size(), 56); // 3x3 stride-1 pad-1 keeps size
        assert_eq!(layers[7].output_size(), 7);
    }

    #[test]
    fn im2col_dimensions() {
        // conv2_x 3x3: M = 56*56, K = 64*9 = 576, N = 64.
        let g = resnet50_layers()[2].im2col_gemm(1);
        assert_eq!(g, GemmShape::new(56 * 56, 64, 576));
        // Batch scales M only.
        let g8 = resnet50_layers()[2].im2col_gemm(8);
        assert_eq!(g8.m, 8 * 56 * 56);
        assert_eq!((g8.n, g8.k), (g.n, g.k));
    }

    #[test]
    fn stem_is_irregular() {
        // The 7x7 stem has K = 3*49 = 147 — a skinny contraction that
        // wastes a rigid 128-wide array.
        let g = resnet50_layers()[0].im2col_gemm(1);
        assert_eq!(g.k, 147);
        assert!(g.irregularity() > 80.0);
    }

    #[test]
    fn macs_scale_linearly_with_batch() {
        let c = resnet50_layers()[4];
        assert_eq!(c.macs(4), 4 * c.macs(1));
    }

    #[test]
    fn suite_is_complete() {
        assert_eq!(resnet50_gemms(1).len(), resnet50_layers().len());
        assert!(resnet50_gemms(2).iter().all(|(_, g)| g.macs() > 0));
    }

    #[test]
    #[should_panic(expected = "kernel exceeds")]
    fn bad_geometry_panics() {
        let c = ConvLayer {
            name: "bad",
            c_in: 1,
            c_out: 1,
            kernel: 9,
            stride: 1,
            input: 4,
            padding: 0,
        };
        let _ = c.output_size();
    }
}
