//! DL-training workloads for the SIGMA evaluation (Sec. II / Sec. VI-A).
//!
//! The paper characterizes GEMMs from Transformer, GNMT, NCF and Baidu
//! DeepBench, with unstructured sparsity from pruning (weights, ~80–90%)
//! and from ReLU/dropout (activations, ~10–50%). This crate provides:
//!
//! * [`suites`] — the named GEMM shape tables (Fig. 1b plus the shapes
//!   the evaluation section calls out);
//! * [`sparsity`] — sparsity profiles and the Zhu–Gupta gradual pruning
//!   schedule used to generate weight sparsity levels over training;
//! * [`training`] — an operator-level model of one training step for the
//!   Fig. 2 time-breakdown experiment;
//! * [`materialize`] — turning an abstract [`GemmProblem`] into concrete
//!   random sparse operands for the functional simulator.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    warn(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod im2col;
pub mod sparsity;
pub mod suites;
pub mod training;

pub use im2col::{resnet50_gemms, resnet50_layers, ConvLayer};
pub use sparsity::{pruning_schedule, SparsityProfile};
pub use suites::{deepbench_suite, evaluation_suite, fig1b_suite, NamedGemm, Workload};
pub use training::{step_breakdown, OpClass, TrainingModel};

use sigma_core::model::GemmProblem;
use sigma_matrix::gen::{sparse_uniform, Density};
use sigma_matrix::SparseMatrix;

/// Materializes a [`GemmProblem`] into concrete random operands with the
/// requested densities, deterministically from `seed`.
///
/// ```
/// use sigma_core::model::GemmProblem;
/// use sigma_matrix::GemmShape;
/// let p = GemmProblem::sparse(GemmShape::new(8, 8, 8), 0.5, 0.5);
/// let (a, b) = sigma_workloads::materialize(&p, 7);
/// assert_eq!((a.rows(), a.cols()), (8, 8));
/// assert_eq!((b.rows(), b.cols()), (8, 8));
/// ```
#[must_use]
pub fn materialize(p: &GemmProblem, seed: u64) -> (SparseMatrix, SparseMatrix) {
    // GemmProblem densities are validated at construction; clamped() is
    // exact for them and infallible for out-of-band values.
    let a = sparse_uniform(p.shape.m, p.shape.k, Density::clamped(p.density_a), seed);
    let b = sparse_uniform(
        p.shape.k,
        p.shape.n,
        Density::clamped(p.density_b),
        seed.wrapping_add(0x5151),
    );
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::GemmShape;

    #[test]
    fn materialize_matches_problem() {
        let p = GemmProblem::sparse(GemmShape::new(20, 30, 40), 0.3, 0.8);
        let (a, b) = materialize(&p, 1);
        assert_eq!((a.rows(), a.cols()), (20, 40));
        assert_eq!((b.rows(), b.cols()), (40, 30));
        let da = a.nnz() as f64 / (20.0 * 40.0);
        assert!((da - 0.3).abs() < 0.01);
    }

    #[test]
    fn materialize_is_deterministic() {
        let p = GemmProblem::dense(GemmShape::new(4, 4, 4));
        assert_eq!(materialize(&p, 9), materialize(&p, 9));
    }
}
