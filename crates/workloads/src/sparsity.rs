//! Sparsity profiles and the gradual pruning schedule (Sec. II).
//!
//! The paper prunes GNMT to 90% weight sparsity with a Zhu–Gupta-style
//! slow sparsification: sparsity rises from an initial to a final level
//! over a fixed number of pruning steps following a cubic schedule.
//! Activation sparsity (from ReLU/dropout) is 10–50% and varies per
//! batch rather than per schedule.

use sigma_core::model::GemmProblem;
use sigma_matrix::GemmShape;

/// Operand sparsity levels for an evaluation scenario.
///
/// Sparsity is the *zero* fraction; densities handed to the models are
/// `1 - sparsity`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityProfile {
    /// Sparsity of the `MK` (input/activation) operand.
    pub input_sparsity: f64,
    /// Sparsity of the `KN` (weight) operand.
    pub weight_sparsity: f64,
}

impl SparsityProfile {
    /// Fully dense.
    pub const DENSE: SparsityProfile =
        SparsityProfile { input_sparsity: 0.0, weight_sparsity: 0.0 };

    /// The paper's headline evaluation point: ~50% input, ~80% weight
    /// sparsity (Sec. VI-A).
    pub const PAPER_SPARSE: SparsityProfile =
        SparsityProfile { input_sparsity: 0.5, weight_sparsity: 0.8 };

    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if a sparsity is outside `[0, 1)`. (Exactly 1.0 would mean
    /// an all-zero operand — degenerate for the evaluation.)
    #[must_use]
    pub fn new(input_sparsity: f64, weight_sparsity: f64) -> Self {
        assert!((0.0..1.0).contains(&input_sparsity), "input sparsity out of range");
        assert!((0.0..1.0).contains(&weight_sparsity), "weight sparsity out of range");
        Self { input_sparsity, weight_sparsity }
    }

    /// Applies the profile to a shape, producing a [`GemmProblem`].
    #[must_use]
    pub fn problem(&self, shape: GemmShape) -> GemmProblem {
        GemmProblem::sparse(shape, 1.0 - self.input_sparsity, 1.0 - self.weight_sparsity)
    }

    /// The Fig. 12b sweep: every combination of {50%, 80%} sparsity on
    /// the two operands, labeled in the paper's "MK80/KN50" style.
    #[must_use]
    pub fn fig12b_sweep() -> Vec<(&'static str, SparsityProfile)> {
        vec![
            ("MK50-KN50", SparsityProfile::new(0.5, 0.5)),
            ("MK50-KN80", SparsityProfile::new(0.5, 0.8)),
            ("MK80-KN50", SparsityProfile::new(0.8, 0.5)),
            ("MK80-KN80", SparsityProfile::new(0.8, 0.8)),
        ]
    }
}

impl Default for SparsityProfile {
    fn default() -> Self {
        Self::DENSE
    }
}

/// The Zhu–Gupta gradual pruning schedule: sparsity after each of
/// `steps + 1` pruning points, rising from `initial` to `target` with the
/// cubic law `s_t = s_f + (s_i − s_f)·(1 − t/n)³`.
///
/// ```
/// let s = sigma_workloads::pruning_schedule(0.0, 0.9, 10);
/// assert_eq!(s.len(), 11);
/// assert_eq!(s[0], 0.0);
/// assert!((s[10] - 0.9).abs() < 1e-12);
/// assert!(s.windows(2).all(|w| w[1] >= w[0])); // monotone
/// ```
///
/// # Panics
///
/// Panics if sparsities are outside `[0, 1]`, `initial > target`, or
/// `steps == 0`.
#[must_use]
pub fn pruning_schedule(initial: f64, target: f64, steps: usize) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&initial) && (0.0..=1.0).contains(&target));
    assert!(initial <= target, "pruning cannot decrease sparsity");
    assert!(steps > 0, "need at least one pruning step");
    (0..=steps)
        .map(|t| {
            let frac = 1.0 - t as f64 / steps as f64;
            target + (initial - target) * frac.powi(3)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_cubic_and_monotone() {
        let s = pruning_schedule(0.0, 0.9, 100);
        assert_eq!(s.len(), 101);
        assert!(s.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        // Cubic: most pruning happens early.
        let early = s[25] - s[0];
        let late = s[100] - s[75];
        assert!(early > 3.0 * late, "early {early} vs late {late}");
    }

    #[test]
    fn schedule_covers_paper_range() {
        // "from 10% to 90%" non-zeros over training iterations.
        let s = pruning_schedule(0.1, 0.9, 20);
        assert!((s[0] - 0.1).abs() < 1e-12);
        assert!((s[20] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn profile_to_problem() {
        let p = SparsityProfile::PAPER_SPARSE.problem(GemmShape::new(4, 5, 6));
        assert!((p.density_a - 0.5).abs() < 1e-12);
        assert!((p.density_b - 0.2).abs() < 1e-12);
        assert_eq!(SparsityProfile::default(), SparsityProfile::DENSE);
    }

    #[test]
    fn fig12b_sweep_has_four_combos() {
        let sweep = SparsityProfile::fig12b_sweep();
        assert_eq!(sweep.len(), 4);
        assert!(sweep.iter().any(|(n, _)| *n == "MK80-KN80"));
    }

    #[test]
    #[should_panic(expected = "cannot decrease")]
    fn schedule_rejects_decreasing() {
        let _ = pruning_schedule(0.9, 0.1, 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn profile_rejects_degenerate() {
        let _ = SparsityProfile::new(1.0, 0.5);
    }
}
