//! Operator-level training-step model for the Fig. 2 time breakdown.
//!
//! Fig. 2 measures one training step of GNMT and Transformer on a V100
//! and finds ~70% of the time in MatMul-shaped work. We rebuild that
//! breakdown from an operator list: every GEMM of the forward pass plus
//! the two backward-pass GEMMs it implies (`dX = dY·Wᵀ`, `dW = Xᵀ·dY`),
//! and the memory-bound non-GEMM ops (attention softmax, layer norm,
//! activations, dropout, embedding gathers, optimizer update).

use crate::suites::{fig1b_suite, NamedGemm, Workload};
use sigma_baselines::gpu::GpuModel;
use sigma_matrix::GemmShape;

/// Classification of a training-step operator, matching Fig. 2's legend
/// granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// GEMM / MatMul-shaped work (forward and backward).
    MatMul,
    /// Softmax / attention-score normalization.
    Softmax,
    /// Layer/batch normalization.
    Normalization,
    /// Elementwise activations, dropout, residual adds.
    Elementwise,
    /// Embedding gathers and data movement.
    Gather,
    /// Optimizer update (Adam-style, touches every parameter).
    Optimizer,
}

impl OpClass {
    /// All classes in display order.
    pub const ALL: [OpClass; 6] = [
        OpClass::MatMul,
        OpClass::Softmax,
        OpClass::Normalization,
        OpClass::Elementwise,
        OpClass::Gather,
        OpClass::Optimizer,
    ];

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            OpClass::MatMul => "MatMul",
            OpClass::Softmax => "Softmax",
            OpClass::Normalization => "Norm",
            OpClass::Elementwise => "Elementwise",
            OpClass::Gather => "Gather",
            OpClass::Optimizer => "Optimizer",
        }
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The training models Fig. 2 profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrainingModel {
    /// Transformer big (324M parameters).
    Transformer,
    /// GNMT 8-layer.
    Gnmt,
}

impl TrainingModel {
    /// The workload tag whose suite entries feed this model's GEMM list.
    fn workload(&self) -> Workload {
        match self {
            TrainingModel::Transformer => Workload::Transformer,
            TrainingModel::Gnmt => Workload::Gnmt,
        }
    }

    /// Approximate parameter count (for the optimizer pass).
    #[must_use]
    pub fn parameters(&self) -> u64 {
        match self {
            TrainingModel::Transformer => 324_000_000,
            TrainingModel::Gnmt => 210_000_000,
        }
    }

    /// Number of repeated layers (the suite lists one layer's GEMMs).
    fn layer_multiplier(&self) -> usize {
        match self {
            TrainingModel::Transformer => 6,
            TrainingModel::Gnmt => 8,
        }
    }
}

impl std::fmt::Display for TrainingModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainingModel::Transformer => f.write_str("Transformer"),
            TrainingModel::Gnmt => f.write_str("GNMT"),
        }
    }
}

/// The three GEMMs one forward GEMM implies in training: the forward
/// product and the two gradient products (Sec. I).
#[must_use]
pub fn training_gemms(forward: GemmShape) -> [GemmShape; 3] {
    let GemmShape { m, n, k } = forward;
    [
        forward,
        // dX[M,K] = dY[M,N] x W^T[N,K]
        GemmShape::new(m, k, n),
        // dW[K,N] = X^T[K,M] x dY[M,N]
        GemmShape::new(k, n, m),
    ]
}

/// The GEMM precision assumed by the Fig. 2 breakdown (stock FP32
/// training, as profiled by the paper).
#[must_use]
pub fn precision_for_fig2() -> sigma_baselines::gpu::GpuPrecision {
    sigma_baselines::gpu::GpuPrecision::Fp32
}

/// One training step's time per [`OpClass`] in seconds on the GPU model.
///
/// The GEMM list is the model's suite entries (one layer) times the layer
/// count, each expanded to forward + two backward GEMMs; non-GEMM ops are
/// memory-bound passes over the activations and parameters.
#[must_use]
pub fn step_breakdown(model: TrainingModel, gpu: &GpuModel) -> Vec<(OpClass, f64)> {
    let gemms: Vec<NamedGemm> =
        fig1b_suite().into_iter().filter(|g| g.workload == model.workload()).collect();
    let layers = model.layer_multiplier();

    // FP32 GEMMs: the paper's Fig. 2 profiles stock (pre-tensor-core-
    // tuned) training runs.
    let mut matmul = 0.0;
    let mut activation_elems: u64 = 0;
    for g in &gemms {
        for shape in training_gemms(g.shape) {
            matmul +=
                gpu.dense_gemm_time_s(shape, crate::training::precision_for_fig2()) * layers as f64;
        }
        activation_elems += (g.shape.mn_elems() as u64) * layers as u64;
    }

    // Non-GEMM ops as memory-bound passes over the activations (forward
    // and backward each re-touch them; unfused kernels of the era read
    // and write several temporaries per op) and, for the optimizer, over
    // every parameter plus Adam's two moment tensors.
    let softmax = gpu.elementwise_time_s(activation_elems, 8.0);
    let norm = gpu.elementwise_time_s(activation_elems, 8.0);
    let elementwise = gpu.elementwise_time_s(activation_elems, 16.0);
    let gather = gpu.elementwise_time_s(model.parameters() / 8, 8.0);
    let optimizer = gpu.elementwise_time_s(model.parameters(), 7.0);

    vec![
        (OpClass::MatMul, matmul),
        (OpClass::Softmax, softmax),
        (OpClass::Normalization, norm),
        (OpClass::Elementwise, elementwise),
        (OpClass::Gather, gather),
        (OpClass::Optimizer, optimizer),
    ]
}

/// Fraction of step time in MatMul (the paper's ~70% headline).
#[must_use]
pub fn matmul_fraction(model: TrainingModel, gpu: &GpuModel) -> f64 {
    let breakdown = step_breakdown(model, gpu);
    let total: f64 = breakdown.iter().map(|(_, t)| t).sum();
    breakdown.iter().find(|(c, _)| *c == OpClass::MatMul).map(|(_, t)| t / total).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_gemms_transpose_dims() {
        let [fwd, dx, dw] = training_gemms(GemmShape::new(512, 4096, 1024));
        assert_eq!(fwd, GemmShape::new(512, 4096, 1024));
        assert_eq!(dx, GemmShape::new(512, 1024, 4096));
        assert_eq!(dw, GemmShape::new(1024, 4096, 512));
        // All three cost the same MACs.
        assert_eq!(fwd.macs(), dx.macs());
        assert_eq!(fwd.macs(), dw.macs());
    }

    #[test]
    fn matmul_dominates_step_time() {
        // Fig. 2: ~70% of the step is MatMul for both models.
        let gpu = GpuModel::v100();
        for model in [TrainingModel::Transformer, TrainingModel::Gnmt] {
            let frac = matmul_fraction(model, &gpu);
            assert!((0.55..=0.85).contains(&frac), "{model}: MatMul fraction {frac} (paper ~0.7)");
        }
    }

    #[test]
    fn breakdown_covers_all_classes() {
        let gpu = GpuModel::v100();
        let b = step_breakdown(TrainingModel::Gnmt, &gpu);
        assert_eq!(b.len(), OpClass::ALL.len());
        assert!(b.iter().all(|(_, t)| *t > 0.0));
    }

    #[test]
    fn names() {
        assert_eq!(OpClass::MatMul.to_string(), "MatMul");
        assert_eq!(TrainingModel::Gnmt.to_string(), "GNMT");
        assert_eq!(TrainingModel::Transformer.parameters(), 324_000_000);
    }
}
