//! Structured vs. unstructured sparsity: SIGMA's headline claim is that
//! it is *agnostic* to sparsity structure (bitmap + flexible mapping),
//! while structure-dependent designs (column combining, weight-indexed
//! PEs) benefit from balanced patterns. These cross-crate tests pin that
//! behavioral contrast.

use sigma::arch::{Dataflow, SigmaConfig, SigmaSim};
use sigma::baselines::combine_columns;
use sigma::matrix::gen::{sparse_row_balanced, sparse_uniform, Density};

#[test]
fn sigma_latency_is_structure_agnostic() {
    // Same density, same shape, two very different patterns: random
    // unstructured vs. perfectly row-balanced. SIGMA maps only non-zeros
    // either way, so cycle counts are (near-)identical.
    let sim =
        SigmaSim::new(SigmaConfig::new(4, 16, 64, Dataflow::InputStationary).unwrap()).unwrap();
    let density = Density::new(0.25).unwrap();
    let unstructured = sparse_uniform(32, 32, density, 1);
    let balanced = sparse_row_balanced(32, 32, density, 2);
    assert_eq!(unstructured.nnz(), balanced.nnz(), "equal work by construction");
    let b = sparse_uniform(32, 16, Density::new(0.7).unwrap(), 3);

    let u = sim.run_gemm(&unstructured, &b).unwrap().stats;
    let s = sim.run_gemm(&balanced, &b).unwrap().stats;
    assert_eq!(u.folds, s.folds);
    assert_eq!(u.loading_cycles, s.loading_cycles);
    let diff = (u.total_cycles() as f64 - s.total_cycles() as f64).abs() / u.total_cycles() as f64;
    assert!(diff < 0.05, "structure should not matter to SIGMA: {u} vs {s}");
}

#[test]
fn column_combining_prefers_structure() {
    // Column combining packs balanced/disjoint-ish patterns tighter than
    // clumped ones at the same density.
    let density = Density::new(0.1).unwrap();
    let balanced = sparse_row_balanced(64, 64, density, 4).to_dense();
    // A clumped pattern: same total nnz concentrated in a few rows.
    let mut clumped = sigma::matrix::Matrix::zeros(64, 64);
    let nnz = balanced.nnz();
    let mut placed = 0;
    'outer: for r in 0..8 {
        for c in 0..64 {
            if placed >= nnz {
                break 'outer;
            }
            clumped.set(r, c, 1.0);
            placed += 1;
        }
    }
    assert_eq!(clumped.nnz(), balanced.nnz());
    let p_bal = combine_columns(&balanced, 8, 0);
    let p_clump = combine_columns(&clumped, 8, 0);
    assert!(
        p_bal.packing_factor() > p_clump.packing_factor(),
        "balanced {} should pack tighter than clumped {}",
        p_bal.packing_factor(),
        p_clump.packing_factor()
    );
}

#[test]
fn sigma_handles_the_clumped_pattern_the_packer_hates() {
    // The clumped matrix that defeats column combining runs on SIGMA at
    // full stationary utilization like anything else.
    let sim =
        SigmaSim::new(SigmaConfig::new(4, 16, 64, Dataflow::InputStationary).unwrap()).unwrap();
    let mut clumped = sigma::matrix::Matrix::zeros(32, 32);
    for r in 0..4 {
        for c in 0..32 {
            clumped.set(r, c, 1.0 + (r + c) as f32 * 0.1);
        }
    }
    let a = sigma::matrix::SparseMatrix::from_dense(&clumped);
    let b = sparse_uniform(32, 8, Density::DENSE, 5);
    let run = sim.run_gemm(&a, &b).unwrap();
    assert_eq!(run.stats.stationary_utilization(), 1.0);
    assert!(run.result.approx_eq(&clumped.matmul(&b.to_dense()), 1e-3));
}
