//! Cross-crate integration tests: workloads → controller → functional
//! SIGMA engine → reference GEMM, plus the analytic model, baselines and
//! energy reports working together through the facade crate.

use sigma::arch::model::{estimate_best, GemmProblem};
use sigma::arch::{Dataflow, DpuAllocator, SigmaConfig, SigmaSim};
use sigma::baselines::{GemmAccelerator, SparseAccelerator, SparseAcceleratorKind, SystolicArray};
use sigma::energy::{sigma_report, systolic_report};
use sigma::matrix::GemmShape;
use sigma::workloads::{fig1b_suite, materialize, SparsityProfile};

/// Scale a workload shape down to functional-simulation size while
/// keeping its aspect ratio flavor.
fn scaled(shape: GemmShape, cap: usize) -> GemmShape {
    let f = |d: usize| d.clamp(1, cap);
    GemmShape::new(f(shape.m), f(shape.n), f(shape.k))
}

#[test]
fn workload_suite_runs_functionally_and_correctly() {
    let sim =
        SigmaSim::new(SigmaConfig::new(4, 16, 64, Dataflow::WeightStationary).unwrap()).unwrap();
    for (i, g) in fig1b_suite().into_iter().enumerate() {
        let shape = scaled(g.shape, 48);
        let p = SparsityProfile::PAPER_SPARSE.problem(shape);
        let (a, b) = materialize(&p, 100 + i as u64);
        let (_, run) = sim.run_best_stationary(&a, &b).unwrap();
        let reference = a.to_dense().matmul(&b.to_dense());
        assert!(
            run.result.approx_eq(&reference, 1e-3 * shape.k as f32),
            "{g}: max diff {}",
            run.result.max_abs_diff(&reference)
        );
        assert_eq!(run.stats.stationary_utilization(), 1.0, "{g}");
    }
}

#[test]
fn analytic_model_tracks_functional_engine_across_suite() {
    let cfg = SigmaConfig::new(4, 16, 64, Dataflow::InputStationary).unwrap();
    let sim = SigmaSim::new(cfg).unwrap();
    for (i, g) in fig1b_suite().into_iter().take(8).enumerate() {
        let shape = scaled(g.shape, 40);
        let p = GemmProblem::sparse(shape, 0.6, 0.6);
        let (a, b) = materialize(&p, 500 + i as u64);
        let run = sim.run_gemm(&a, &b).unwrap();
        let est = sigma::arch::model::estimate(&cfg, &p);
        let f = run.stats.total_cycles() as f64;
        let e = est.total_cycles() as f64;
        assert!((f - e).abs() / f.max(1.0) < 0.4, "{g} ({shape}): functional {f} vs analytic {e}");
    }
}

#[test]
fn all_dataflows_agree_numerically() {
    let p = GemmProblem::sparse(GemmShape::new(24, 18, 30), 0.5, 0.4);
    let (a, b) = materialize(&p, 9);
    let reference = a.to_dense().matmul(&b.to_dense());
    for df in Dataflow::ALL {
        let sim = SigmaSim::new(SigmaConfig::new(2, 16, 32, df).unwrap()).unwrap();
        let run = sim.run_gemm(&a, &b).unwrap();
        assert!(run.result.approx_eq(&reference, 0.05), "{df}");
    }
}

#[test]
fn multi_gemm_batch_schedules_over_dpus() {
    let alloc = DpuAllocator::new(SigmaConfig::new(8, 32, 64, Dataflow::WeightStationary).unwrap());
    let problems: Vec<GemmProblem> = fig1b_suite()
        .into_iter()
        .take(4)
        .map(|g| SparsityProfile::PAPER_SPARSE.problem(scaled(g.shape, 256)))
        .collect();
    let (allocs, makespan) = alloc.run_batch(&problems).unwrap();
    assert_eq!(allocs.len(), 4);
    assert!(makespan > 0);
    assert_eq!(allocs.iter().map(|a| a.num_dpes).sum::<usize>(), 8);
}

#[test]
fn sigma_vs_everything_standings_hold_at_full_scale() {
    // The qualitative standing on the paper's headline regime: SIGMA
    // beats the TPU by more on sparse than on dense, and beats the sparse
    // accelerators on a big sparse GEMM.
    let shape = GemmShape::new(2048, 2048, 2048);
    let dense = GemmProblem::dense(shape);
    let sparse = SparsityProfile::PAPER_SPARSE.problem(shape);
    let cfg = SigmaConfig::paper();
    let tpu = SystolicArray::new(128, 128);

    let dense_speedup = tpu.simulate(&dense).total_cycles() as f64
        / estimate_best(&cfg, &dense).1.total_cycles() as f64;
    let sparse_speedup = tpu.simulate(&sparse).total_cycles() as f64
        / estimate_best(&cfg, &sparse).1.total_cycles() as f64;
    assert!(dense_speedup >= 1.0);
    assert!(sparse_speedup > 2.0 * dense_speedup);

    for kind in [SparseAcceleratorKind::Scnn, SparseAcceleratorKind::OuterSpace] {
        let acc = SparseAccelerator::new(kind, 16384);
        let speedup = acc.simulate(&sparse).total_cycles() as f64
            / estimate_best(&cfg, &sparse).1.total_cycles() as f64;
        assert!(speedup > 1.5, "{kind}: {speedup}");
    }
}

#[test]
fn energy_reports_compose_with_simulated_cycles() {
    let shape = GemmShape::new(1024, 1024, 1024);
    let p = SparsityProfile::PAPER_SPARSE.problem(shape);
    let cfg = SigmaConfig::paper();
    let tpu = SystolicArray::new(128, 128);

    let sigma_cycles = estimate_best(&cfg, &p).1.total_cycles();
    let tpu_cycles = tpu.simulate(&p).total_cycles();
    let sigma_energy = sigma_report(128, 128).energy_j(sigma_cycles);
    let tpu_energy = systolic_report(128, 128).energy_j(tpu_cycles);
    // Despite 2x power, SIGMA's speedup makes it the lower-energy design.
    assert!(sigma_energy < tpu_energy);
}

#[test]
fn facade_reexports_are_complete() {
    // Every subsystem is reachable through the facade crate.
    let _ = sigma::matrix::Matrix::zeros(2, 2);
    let _ = sigma::interconnect::Fan::new(8).unwrap();
    let _ = sigma::energy::systolic_report(4, 4);
    let _ = sigma::arch::SigmaConfig::paper();
    let _ = sigma::baselines::SystolicArray::new(4, 4);
    let _ = sigma::workloads::fig1b_suite();
}
