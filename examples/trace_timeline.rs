//! Inspect a GEMM's cycle-level execution timeline: every fold load,
//! streaming step and reduction drain, with start cycles — the view that
//! shows *where* the Table-II totals come from.
//!
//! ```sh
//! cargo run --example trace_timeline
//! ```

use sigma::arch::{Dataflow, Phase, SigmaConfig, SigmaSim};
use sigma::matrix::gen::{sparse_uniform, Density};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = SigmaSim::new(SigmaConfig::new(2, 8, 4, Dataflow::InputStationary)?)?;
    let a = sparse_uniform(8, 10, Density::from_sparsity(0.6).unwrap(), 1);
    let b = sparse_uniform(10, 5, Density::from_sparsity(0.4).unwrap(), 2);

    let (run, trace) = sim.run_gemm_traced(&a, &b)?;
    println!("stats: {}\n", run.stats);
    println!("per-fold summary:\n{}", trace.fold_summary());

    println!("full timeline (first 20 events):");
    println!("{:>7} {:>7} {:>7} {:>5} {:>5}", "start", "cycles", "phase", "fold", "step");
    for e in trace.events().iter().take(20) {
        println!(
            "{:>7} {:>7} {:>7} {:>5} {:>5}",
            e.start,
            e.cycles,
            e.phase.to_string(),
            e.fold,
            e.step.map_or("-".to_string(), |s| s.to_string())
        );
    }
    assert!(trace.consistent_with(&run.stats));
    println!(
        "\ntrace totals check out: {} load + {} stream + {} drain = {} cycles",
        trace.phase_cycles(Phase::Load),
        trace.phase_cycles(Phase::Stream),
        trace.phase_cycles(Phase::Drain),
        trace.total_cycles()
    );
    Ok(())
}
