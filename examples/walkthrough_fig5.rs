//! The paper's Fig. 5 walkthrough, executed step by step: from two
//! bitmap-compressed matrices to a mapped, streaming Flex-DPU — printing
//! the REGOR registers, the stationary′ bitmap, the fold/cluster
//! assignment, the SRC–DEST tables with their naive routing offsets, the
//! output bitmap, and finally the computed product.
//!
//! ```sh
//! cargo run --example walkthrough_fig5
//! ```

use sigma::arch::{ControllerPlan, FlexDpe};
use sigma::matrix::{Matrix, SparseMatrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step i: two bitmap-compressed matrices. MK (4x4) is stationary,
    // KN (4x3) streams — the M-sta, N-str dataflow of Fig. 5.
    let mk = Matrix::from_rows(&[
        &[1.0, 0.0, 2.0, 0.0],
        &[0.0, 3.0, 0.0, 0.0],
        &[4.0, 0.0, 0.0, 5.0],
        &[0.0, 0.0, 6.0, 0.0],
    ]);
    let kn = Matrix::from_rows(&[
        &[1.0, 0.0, 2.0],
        &[0.0, 3.0, 0.0],
        &[4.0, 5.0, 0.0],
        &[0.0, 0.0, 0.0], // row k=3 is all zero: REGOR will drop its users
    ]);
    let stationary = SparseMatrix::from_dense(&mk);
    let streaming = SparseMatrix::from_dense(&kn);
    println!("Step i — compressed operands");
    println!("  stationary (MK) bitmap:\n{:?}", stationary.bitmap());
    println!("  streaming  (KN) bitmap:\n{:?}", streaming.bitmap());

    // Step ii: REGOR row-ORs + AND -> stationary'.
    let n_mult = 4; // multipliers per Flex-DPE in the figure
    let plan = ControllerPlan::build(&stationary, streaming.bitmap(), 2 * n_mult);
    println!("Step ii — REGOR (row-wise OR of the streaming bitmap): {:?}", plan.stream_or);
    println!(
        "  stationary' keeps {} of {} non-zeros ({} dropped: k=3 never streams)",
        plan.stationary_prime_nnz,
        stationary.nnz(),
        plan.dropped_stationary
    );

    // Steps iii-v: counters, folds, clusters.
    println!("Step iii/v — folds and cluster (vecID) assignment:");
    for (f, fold) in plan.folds.iter().enumerate() {
        println!(
            "  fold {f}: {} elements, clusters (rows) {:?}, vecIDs {:?}",
            fold.occupied(),
            fold.cluster_groups,
            &fold.vec_ids[..fold.occupied()]
        );
    }

    // Step v/vi: SRC-DEST tables and naive routing offsets per streamed
    // column.
    for step in 0..streaming.cols() {
        for dpe in 0..2 {
            let table = plan.src_dest_table(0, dpe, n_mult, streaming.bitmap(), step);
            if table.is_empty() {
                continue;
            }
            let offsets: Vec<i64> =
                table.iter().map(|&(s, d)| ControllerPlan::routing_offset(s, d)).collect();
            println!(
                "Step v/vi — column {step}, Flex-DPE {dpe}: SRC-DEST {table:?} -> offsets {offsets:?}"
            );
        }
    }

    // Step v: output bitmap.
    let out_bm = plan.output_bitmap(&stationary, streaming.bitmap(), mk.rows());
    println!("Step v — output bitmap (which C elements get non-zero work):\n{out_bm:?}");

    // Step vii: stream through real Flex-DPE hardware models.
    println!("Step vii — streaming through two Flex-DPE-4 units:");
    let fold = &plan.folds[0];
    let mut result = Matrix::zeros(mk.rows(), kn.cols());
    let kn_dense = streaming.to_dense();
    for dpe_idx in 0..fold.occupied().div_ceil(n_mult) {
        let lo = dpe_idx * n_mult;
        let hi = (lo + n_mult).min(fold.occupied());
        let mut unit = FlexDpe::new(n_mult)?;
        let mut ids = vec![None; n_mult];
        ids[..hi - lo].copy_from_slice(&fold.vec_ids[lo..hi]);
        unit.load(&fold.elements[lo..hi], &ids)?;
        for step in 0..kn.cols() {
            let out = unit.step(&|k| kn_dense.get(k, step))?;
            for s in &out.reduction.sums {
                let row = fold.cluster_groups[s.vec_id as usize];
                result.set(row, step, result.get(row, step) + s.value);
            }
        }
    }
    println!("  computed C = A x B:\n{result}");
    let reference = mk.matmul(&kn);
    assert!(result.approx_eq(&reference, 1e-5));
    println!("  matches the reference GEMM. ✓");
    Ok(())
}
