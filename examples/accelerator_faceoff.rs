//! Face-off: one sparse GEMM across every modeled accelerator — SIGMA,
//! TPU-style systolic arrays of three aspect ratios, and the six sparse
//! accelerators — normalized to 16384 PEs.
//!
//! ```sh
//! cargo run --example accelerator_faceoff -- 1024 1024 1024 0.5 0.8
//! ```
//! (arguments: M N K input-sparsity weight-sparsity)

use sigma::arch::model::estimate_best;
use sigma::arch::SigmaConfig;
use sigma::baselines::{GemmAccelerator, SparseAccelerator, SparseAcceleratorKind, SystolicArray};
use sigma::matrix::GemmShape;
use sigma::workloads::SparsityProfile;

fn main() {
    let args: Vec<f64> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
    let (m, n, k, si, sw) = match args.as_slice() {
        [m, n, k, si, sw, ..] => (*m as usize, *n as usize, *k as usize, *si, *sw),
        _ => (1024, 1024, 1024, 0.5, 0.8),
    };
    let shape = GemmShape::new(m, n, k);
    let p = SparsityProfile::new(si, sw).problem(shape);
    println!(
        "GEMM {shape}, input sparsity {:.0}%, weight sparsity {:.0}%, 16384 PEs\n",
        si * 100.0,
        sw * 100.0
    );

    let mut rows: Vec<(String, u64)> = Vec::new();
    let (df, s) = estimate_best(&SigmaConfig::paper(), &p);
    rows.push((format!("SIGMA ({df})"), s.total_cycles()));
    for array in
        [SystolicArray::new(128, 128), SystolicArray::new(256, 64), SystolicArray::new(512, 32)]
    {
        rows.push((array.name(), array.simulate(&p).total_cycles()));
    }
    for kind in SparseAcceleratorKind::ALL {
        let acc = SparseAccelerator::new(kind, 16384);
        rows.push((acc.name(), acc.simulate(&p).total_cycles()));
    }

    let sigma_cycles = rows[0].1;
    rows.sort_by_key(|(_, c)| *c);
    println!("{:>22} {:>14} {:>12}", "design", "cycles", "vs SIGMA");
    for (name, cycles) in &rows {
        println!("{name:>22} {cycles:>14} {:>11.2}x", *cycles as f64 / sigma_cycles as f64);
    }
}
