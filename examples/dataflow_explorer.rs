//! Explore how dataflow choice and operand sparsity interact for a GEMM
//! of your choosing: runs all three SIGMA dataflows across a sparsity
//! grid and prints total latency and efficiencies.
//!
//! ```sh
//! cargo run --example dataflow_explorer -- 512 1024 256
//! ```
//! (arguments are M N K; defaults to 1024 2048 512)

use sigma::arch::model::{estimate, GemmProblem};
use sigma::arch::{Dataflow, SigmaConfig};
use sigma::matrix::GemmShape;

fn main() {
    let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
    let (m, n, k) = match args.as_slice() {
        [m, n, k, ..] => (*m, *n, *k),
        _ => (1024, 2048, 512),
    };
    let shape = GemmShape::new(m, n, k);
    println!("GEMM {shape} on SIGMA 128 x Flex-DPE-128\n");
    println!(
        "{:>10} {:>10}  {:>14} {:>12} {:>10} {:>11}",
        "MK dens", "KN dens", "dataflow", "cycles", "stat util", "overall eff"
    );

    for da in [1.0, 0.5, 0.2] {
        for db in [1.0, 0.5, 0.2] {
            let p = GemmProblem::sparse(shape, da, db);
            let mut best: Option<(Dataflow, u64)> = None;
            for df in Dataflow::ALL {
                let cfg = SigmaConfig::paper().with_dataflow(df);
                let s = estimate(&cfg, &p);
                let marker = String::new();
                println!(
                    "{:>10.1} {:>10.1}  {:>14} {:>12} {:>9.1}% {:>10.1}%{marker}",
                    da,
                    db,
                    df.to_string(),
                    s.total_cycles(),
                    s.stationary_utilization() * 100.0,
                    s.overall_efficiency() * 100.0,
                );
                if best.is_none_or(|(_, c)| s.total_cycles() < c) {
                    best = Some((df, s.total_cycles()));
                }
            }
            let (df, _) = best.expect("three dataflows evaluated");
            println!("{:>38} best: {df}\n", "");
        }
    }
    println!("Rule of thumb from the paper: keep the sparser operand");
    println!("stationary; no-local-reuse only pays off with huge bandwidth.");
}
