//! ResNet-50 convolutions lowered to GEMMs via Im2Col (Sec. I) and run
//! on SIGMA vs a 128x128 TPU, at the ~70% weight sparsity the paper
//! reports ResNet-50 tolerates.
//!
//! ```sh
//! cargo run --example resnet50_conv -- 8     # batch size (default 4)
//! ```

use sigma::arch::model::estimate_best;
use sigma::arch::SigmaConfig;
use sigma::baselines::{GemmAccelerator, SystolicArray};
use sigma::workloads::{resnet50_gemms, SparsityProfile};

fn main() {
    let batch: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    // ReLU gives ~40% activation sparsity; pruning gives ~70% weight
    // sparsity (paper Sec. II).
    let profile = SparsityProfile::new(0.4, 0.7);
    let cfg = SigmaConfig::paper();
    let tpu = SystolicArray::new(128, 128);

    println!("ResNet-50 conv layers as Im2Col GEMMs, batch {batch}:");
    println!(
        "{:>22} {:>20} {:>12} {:>12} {:>9}",
        "layer", "GEMM (M-N-K)", "TPU cyc", "SIGMA cyc", "speedup"
    );
    let mut tpu_total = 0u64;
    let mut sigma_total = 0u64;
    for (name, shape) in resnet50_gemms(batch) {
        let p = profile.problem(shape);
        let t = tpu.simulate(&p).total_cycles();
        let (_, s) = estimate_best(&cfg, &p);
        let s = s.total_cycles();
        tpu_total += t;
        sigma_total += s;
        println!(
            "{name:>22} {:>20} {t:>12} {s:>12} {:>8.2}x",
            shape.to_string(),
            t as f64 / s as f64
        );
    }
    println!(
        "\nnetwork total: TPU {tpu_total} vs SIGMA {sigma_total} cycles -> {:.2}x",
        tpu_total as f64 / sigma_total as f64
    );
}
