//! Quickstart: run one sparse, irregular GEMM on a SIGMA instance, verify
//! the result against the reference GEMM, and print the Table-II stats.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sigma::arch::{Dataflow, SigmaConfig, SigmaSim};
use sigma::matrix::gen::{sparse_uniform, Density};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small SIGMA: 4 Flex-DPEs of 32 multipliers, 32 words/cycle SRAM.
    let config = SigmaConfig::new(4, 32, 32, Dataflow::WeightStationary)?;
    let sim = SigmaSim::new(config)?;

    // An irregular GEMM with unstructured sparsity: 50%-sparse inputs,
    // 80%-sparse weights (the paper's headline regime).
    let a = sparse_uniform(96, 64, Density::from_sparsity(0.5).unwrap(), 1);
    let b = sparse_uniform(64, 24, Density::from_sparsity(0.8).unwrap(), 2);
    println!(
        "GEMM: A[{}x{}] ({} nnz) x B[{}x{}] ({} nnz)",
        a.rows(),
        a.cols(),
        a.nnz(),
        b.rows(),
        b.cols(),
        b.nnz()
    );

    // Run under both stationary dataflows; keep the faster one, exactly
    // like the paper's evaluation.
    let (dataflow, run) = sim.run_best_stationary(&a, &b)?;
    println!("best dataflow: {dataflow}");
    println!("stats: {}", run.stats);

    // The simulator computed the real product through the modeled
    // Benes -> multipliers -> FAN datapath; check it.
    let reference = a.to_dense().matmul(&b.to_dense());
    let diff = run.result.max_abs_diff(&reference);
    println!("max |sim - reference| = {diff:e}");
    assert!(run.result.approx_eq(&reference, 1e-3 * a.cols() as f32));

    // SIGMA's key property: only non-zeros were mapped stationary.
    assert_eq!(run.stats.stationary_utilization(), 1.0);
    println!("stationary utilization: 100% (only non-zeros mapped)");
    Ok(())
}
