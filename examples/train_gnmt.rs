//! Simulate the GEMMs of a pruned-GNMT training step on the paper's
//! full-size SIGMA (128 Flex-DPE-128) versus a 128x128 TPU, layer by
//! layer, with the weight sparsity following the Zhu–Gupta pruning
//! schedule across training.
//!
//! ```sh
//! cargo run --example train_gnmt
//! ```

use sigma::arch::model::estimate_best;
use sigma::arch::SigmaConfig;
use sigma::baselines::{GemmAccelerator, SystolicArray};
use sigma::workloads::training::training_gemms;
use sigma::workloads::{fig1b_suite, pruning_schedule, SparsityProfile, Workload};

fn main() {
    let cfg = SigmaConfig::paper();
    let tpu = SystolicArray::new(128, 128);
    let gnmt: Vec<_> = fig1b_suite().into_iter().filter(|g| g.workload == Workload::Gnmt).collect();

    // Weight sparsity rises 0% -> 90% over pruning steps (Sec. II); we
    // sample the beginning, middle and end of the schedule.
    let schedule = pruning_schedule(0.0, 0.9, 10);
    for &step in &[0usize, 5, 10] {
        let weight_sparsity = schedule[step].min(0.899);
        let profile = SparsityProfile::new(0.4, weight_sparsity);
        let mut sigma_total = 0u64;
        let mut tpu_total = 0u64;
        println!(
            "\n== pruning step {step}: weight sparsity {:.0}%, input sparsity 40% ==",
            weight_sparsity * 100.0
        );
        for g in &gnmt {
            // Forward + both backward GEMMs per layer.
            for shape in training_gemms(g.shape) {
                let p = profile.problem(shape);
                let (_, s) = estimate_best(&cfg, &p);
                let t = tpu.simulate(&p);
                sigma_total += s.total_cycles();
                tpu_total += t.total_cycles();
            }
        }
        println!("  SIGMA : {sigma_total:>12} cycles");
        println!("  TPU   : {tpu_total:>12} cycles");
        println!("  speedup: {:.2}x", tpu_total as f64 / sigma_total as f64);
    }
    println!("\nSpeedup grows as pruning sparsifies the weights — the TPU");
    println!("must still multiply every zero, SIGMA maps only non-zeros.");
}
